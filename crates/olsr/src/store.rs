//! The shared interned link-state store: each originator's advertised
//! link set is represented **once per network**, delta-compressed, and
//! shared copy-on-write across every node that heard it.
//!
//! # Why
//!
//! Under the per-node [`TopologyBase`] every node stores every
//! originator's advertised set privately — `O(n²)` tuples network-wide,
//! the memory wall that made the n = 4000 live sweep cost gigabytes of
//! RSS. But the sets are *identical by construction*: a TC emission is
//! flooded verbatim (forwarding patches only TTL/hop bytes), so all
//! receivers of `(originator, message seq)` decode the same advertised
//! list. The store exploits exactly that: one refcounted, packed copy
//! per emission, with nodes keeping only a per-originator
//! `(ansn, expiry, set reference)` overlay — see [`SharedTopology`].
//!
//! # Packing
//!
//! A slot's payload is the advertised list sorted ascending by id,
//! delta-compressed: LEB128 varints of the id deltas followed by
//! varints of the three QoS components. Typical advertised sets (a
//! handful of nearby ids with small QoS values) pack into a few bytes
//! per link instead of the 40-byte in-memory tuple.
//!
//! # Correctness under sequence reuse
//!
//! Dedup is keyed by `(originator, seq)`, but the store never *trusts*
//! the key: an acquire that hits the key compares the packed payloads
//! and allocates a fresh slot on mismatch (repointing the key), so a
//! wrapped or rebooted sequence space degrades to plain refcounting,
//! never to corruption. The differential suites drive exactly this
//! with adversarial histories.
//!
//! [`TopologyBase`]: crate::tables::TopologyBase

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use qolsr_graph::NodeId;
use qolsr_metrics::{Bandwidth, Delay, Energy, LinkQos};
use qolsr_sim::SimTime;

use crate::intern::InternTable;
use crate::tables::{seq_newer, TcUpdate, FAR_FUTURE};

/// Appends `v` as an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it.
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Encodes a sorted advertised list into `out` (cleared first).
fn encode_links(links: &[(NodeId, LinkQos)], out: &mut Vec<u8>) {
    out.clear();
    let mut prev = 0u32;
    for &(adv, qos) in links {
        debug_assert!(adv.0 >= prev, "advertised list must be sorted");
        put_varint(out, u64::from(adv.0 - prev));
        prev = adv.0;
        put_varint(out, qos.bandwidth.value());
        put_varint(out, qos.delay.value());
        put_varint(out, qos.energy.value());
    }
}

/// A refcounted handle to one interned advertised set. Obtained from
/// [`LinkSetStore::acquire`]; every copy handed out must eventually go
/// back through [`LinkSetStore::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRef(u32);

/// One interned advertised set.
#[derive(Debug, Default)]
struct Slot {
    /// Dedup key: the emission this payload came from.
    orig: NodeId,
    seq: u16,
    /// Live references (0 = free).
    refs: u32,
    /// Advertised links in the payload.
    links: u32,
    /// Delta-varint packed payload (see module docs).
    packed: Vec<u8>,
}

/// Resident-memory and dedup statistics of a [`LinkSetStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreGauges {
    /// Slots currently referenced.
    pub live_slots: u64,
    /// Advertised links across live slots (each counted once, however
    /// many nodes reference the set).
    pub resident_links: u64,
    /// Packed payload bytes across live slots plus index/intern
    /// overhead — the store's approximate heap footprint.
    pub resident_bytes: u64,
    /// Acquires served by an existing slot (the sharing the store
    /// exists for).
    pub dedup_hits: u64,
    /// Acquires that allocated a slot.
    pub slots_interned: u64,
}

/// The network-wide interned set store. Usually owned behind a
/// [`SharedLinkStore`] handle; all nodes of one network feed and read
/// the same instance.
#[derive(Debug, Default)]
pub struct LinkSetStore {
    /// Originator → dense index for the per-originator dedup lists.
    intern: InternTable,
    /// Dense originator → `(seq, slot)` pairs, ascending by raw seq.
    /// Exact-match lookups only, so raw-u16 order is wraparound-safe.
    by_origin: Vec<Vec<(u16, u32)>>,
    slots: Vec<Slot>,
    /// Indices of free slots (packed buffers retained for reuse).
    free: Vec<u32>,
    /// Payload bytes across live slots.
    payload_bytes: usize,
    /// Advertised links across live slots.
    resident_links: usize,
    dedup_hits: u64,
    slots_interned: u64,
    /// Scratch encoding buffer for acquire-time content comparison.
    encode_buf: Vec<u8>,
}

impl LinkSetStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the advertised set of emission `(orig, seq)` and returns
    /// a reference to it. `links` must be sorted ascending by id (the
    /// duplicate-free form the topology bases already produce).
    ///
    /// If the emission is already interned with identical content, its
    /// refcount is bumped; a key hit with *different* content (wrapped
    /// sequence space) allocates a fresh slot and repoints the key.
    pub fn acquire(&mut self, orig: NodeId, seq: u16, links: &[(NodeId, LinkQos)]) -> SetRef {
        let mut packed = std::mem::take(&mut self.encode_buf);
        encode_links(links, &mut packed);
        let dense = self.intern.intern(orig) as usize;
        if self.by_origin.len() <= dense {
            self.by_origin.resize_with(dense + 1, Vec::new);
        }
        let list = &mut self.by_origin[dense];
        match list.binary_search_by_key(&seq, |e| e.0) {
            Ok(i) => {
                let slot = list[i].1;
                if self.slots[slot as usize].packed == packed {
                    self.slots[slot as usize].refs += 1;
                    self.dedup_hits += 1;
                    self.encode_buf = packed;
                    SetRef(slot)
                } else {
                    // Same (orig, seq), different content: the sequence
                    // space wrapped while the old emission is still
                    // referenced. Repoint the key at a fresh slot; the
                    // old one stays alive under its references.
                    let fresh = self.alloc(orig, seq, links.len() as u32, packed);
                    self.by_origin[dense][i].1 = fresh.0;
                    fresh
                }
            }
            Err(i) => {
                let fresh = self.alloc(orig, seq, links.len() as u32, packed);
                self.by_origin[dense].insert(i, (seq, fresh.0));
                fresh
            }
        }
    }

    fn alloc(&mut self, orig: NodeId, seq: u16, links: u32, packed: Vec<u8>) -> SetRef {
        self.payload_bytes += packed.len();
        self.resident_links += links as usize;
        self.slots_interned += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                // Reclaim the retained buffer for the encode scratch.
                self.encode_buf = std::mem::replace(&mut s.packed, packed);
                self.encode_buf.clear();
                s.orig = orig;
                s.seq = seq;
                s.refs = 1;
                s.links = links;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    orig,
                    seq,
                    refs: 1,
                    links,
                    packed,
                });
                slot
            }
        };
        SetRef(slot)
    }

    /// Adds a reference to an already-acquired set.
    pub fn retain(&mut self, r: SetRef) {
        let s = &mut self.slots[r.0 as usize];
        debug_assert!(s.refs > 0, "retain of a freed slot");
        s.refs += 1;
    }

    /// Drops a reference; the slot is reclaimed when the last holder
    /// releases (its packed buffer is retained for reuse).
    pub fn release(&mut self, r: SetRef) {
        let slot = r.0 as usize;
        let s = &mut self.slots[slot];
        debug_assert!(s.refs > 0, "release of a freed slot");
        s.refs -= 1;
        if s.refs > 0 {
            return;
        }
        self.payload_bytes -= s.packed.len();
        self.resident_links -= s.links as usize;
        s.packed.clear();
        let (orig, seq) = (s.orig, s.seq);
        // Unregister the dedup key — unless a wrapped sequence space
        // already repointed it at a newer slot.
        if let Some(dense) = self.intern.get(orig) {
            let list = &mut self.by_origin[dense as usize];
            if let Ok(i) = list.binary_search_by_key(&seq, |e| e.0) {
                if list[i].1 == r.0 {
                    list.remove(i);
                }
            }
        }
        self.free.push(r.0);
    }

    /// Advertised links in the referenced set.
    pub fn link_count(&self, r: SetRef) -> usize {
        self.slots[r.0 as usize].links as usize
    }

    /// Appends the referenced set as `(originator, advertised, qos)`
    /// triples, ascending by advertised id.
    pub fn links_append(&self, r: SetRef, orig: NodeId, out: &mut Vec<(NodeId, NodeId, LinkQos)>) {
        self.decode(r, |adv, qos| out.push((orig, adv, qos)));
    }

    /// Appends the referenced set as `(originator, advertised)` pairs,
    /// ascending by advertised id.
    pub fn keys_append(&self, r: SetRef, orig: NodeId, out: &mut Vec<(NodeId, NodeId)>) {
        self.decode(r, |adv, _| out.push((orig, adv)));
    }

    /// Appends the advertised ids of the referenced set, ascending.
    pub fn ids_append(&self, r: SetRef, out: &mut Vec<NodeId>) {
        self.decode(r, |adv, _| out.push(adv));
    }

    fn decode(&self, r: SetRef, mut visit: impl FnMut(NodeId, LinkQos)) {
        let s = &self.slots[r.0 as usize];
        debug_assert!(s.refs > 0, "decode of a freed slot");
        let buf = &s.packed;
        let mut pos = 0;
        let mut prev = 0u32;
        for _ in 0..s.links {
            prev += get_varint(buf, &mut pos) as u32;
            let qos = LinkQos {
                bandwidth: Bandwidth(get_varint(buf, &mut pos)),
                delay: Delay(get_varint(buf, &mut pos)),
                energy: Energy(get_varint(buf, &mut pos)),
            };
            visit(NodeId(prev), qos);
        }
        debug_assert_eq!(pos, buf.len(), "payload fully consumed");
    }

    /// Current resident-memory and dedup statistics.
    pub fn gauges(&self) -> StoreGauges {
        let overhead = self.intern.approx_bytes()
            + self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self
                .by_origin
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<(u16, u32)>())
                .sum::<usize>()
            + self.by_origin.capacity() * std::mem::size_of::<Vec<(u16, u32)>>();
        StoreGauges {
            live_slots: (self.slots.len() - self.free.len()) as u64,
            resident_links: self.resident_links as u64,
            resident_bytes: (self.payload_bytes + overhead) as u64,
            dedup_hits: self.dedup_hits,
            slots_interned: self.slots_interned,
        }
    }
}

/// A cloneable handle to a network-wide [`LinkSetStore`].
///
/// The mutex is uncontended in the single-threaded engine (the same
/// pattern as the node's route-cache lock); it exists so `&OlsrNode`
/// accessors stay shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct SharedLinkStore(Arc<Mutex<LinkSetStore>>);

impl SharedLinkStore {
    /// Creates a handle to a fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, LinkSetStore> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current resident-memory and dedup statistics.
    pub fn gauges(&self) -> StoreGauges {
        self.lock().gauges()
    }
}

/// One node's per-originator overlay over the shared store.
#[derive(Debug, Clone, Copy)]
struct Overlay {
    orig: NodeId,
    /// Latest accepted ANSN of `orig`.
    ansn: u16,
    /// Validity horizon of the whole set *and* the ANSN record — one
    /// instant, because a TC stamps every tuple it carries with the
    /// same hold time (the invariant the overlay representation rests
    /// on).
    until: SimTime,
    set: SetRef,
}

/// Store-backed topology base: the node keeps only `(ansn, expiry,
/// set reference)` overlays, one per originator, while the advertised
/// sets themselves live deduplicated in the network's
/// [`SharedLinkStore`].
///
/// Semantics are pinned ≡ [`TopologyBase`] — the surviving per-node
/// reference formulation — by differential proptests and full-network
/// replays (`tests/store_differential.rs`); every accessor produces the
/// same content in the same order with the same min-expiry horizons.
///
/// [`TopologyBase`]: crate::tables::TopologyBase
#[derive(Debug)]
pub struct SharedTopology {
    store: SharedLinkStore,
    /// Overlays ascending by originator.
    overlays: Vec<Overlay>,
    /// Stored links across all overlays (including expired-but-unswept),
    /// mirroring [`TopologyBase::len`].
    ///
    /// [`TopologyBase::len`]: crate::tables::TopologyBase::len
    count: usize,
    /// Scratch for sorting/deduplicating an incoming advertised list.
    scratch: Vec<(NodeId, LinkQos)>,
    /// Scratch for decoding the previous set during change tracking.
    old_ids: Vec<NodeId>,
}

impl SharedTopology {
    /// Creates an empty base feeding (and fed by) `store`.
    pub fn new(store: SharedLinkStore) -> Self {
        Self {
            store,
            overlays: Vec::new(),
            count: 0,
            scratch: Vec::new(),
            old_ids: Vec::new(),
        }
    }

    /// The store handle this base shares sets through.
    pub fn store(&self) -> &SharedLinkStore {
        &self.store
    }

    /// Returns `true` when a TC from `originator` carrying `ansn` would
    /// be accepted at `now` — the RFC 3626 §9.5 check, with an expired
    /// record treated as absent (a silent-past-hold originator is
    /// re-learned from any ANSN, e.g. after a power cycle reset it).
    pub fn accepts_ansn(&self, originator: NodeId, ansn: u16, now: SimTime) -> bool {
        match self.overlays.binary_search_by_key(&originator, |o| o.orig) {
            Ok(i) => self.overlays[i].until <= now || !seq_newer(self.overlays[i].ansn, ansn),
            Err(_) => true,
        }
    }

    /// Integrates the TC of emission `(originator, seq)` carrying
    /// `ansn` and `advertised`, mirroring
    /// [`TopologyBase::process_tc_tracked`] exactly; `seq` additionally
    /// keys the store's content dedup.
    ///
    /// [`TopologyBase::process_tc_tracked`]: crate::tables::TopologyBase::process_tc_tracked
    pub fn process_tc_tracked(
        &mut self,
        originator: NodeId,
        seq: u16,
        ansn: u16,
        advertised: &[(NodeId, LinkQos)],
        now: SimTime,
        hold_until: SimTime,
    ) -> TcUpdate {
        let slot = self.overlays.binary_search_by_key(&originator, |o| o.orig);
        if let Ok(i) = slot {
            let o = &self.overlays[i];
            if o.until > now && seq_newer(o.ansn, ansn) {
                return TcUpdate {
                    applied: false,
                    links_changed: false,
                };
            }
        }
        // Sort the incoming list by advertised id, keeping the *last*
        // occurrence of duplicate ids (map-insert semantics) — the
        // same normalization as the per-node reference.
        self.scratch.clear();
        self.scratch.extend_from_slice(advertised);
        self.scratch.sort_by_key(|&(n, _)| n);
        self.scratch.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                *earlier = *later;
                true
            } else {
                false
            }
        });

        let mut st = self.store.lock();
        let links_changed = match slot {
            Ok(i) if self.overlays[i].until > now => {
                self.old_ids.clear();
                st.ids_append(self.overlays[i].set, &mut self.old_ids);
                !self
                    .old_ids
                    .iter()
                    .copied()
                    .eq(self.scratch.iter().map(|&(n, _)| n))
            }
            // No live previous set: changed iff the new set is nonempty
            // (matching the reference's empty-vs-new comparison).
            _ => !self.scratch.is_empty(),
        };
        let fresh = st.acquire(originator, seq, &self.scratch);
        self.count += self.scratch.len();
        match slot {
            Ok(i) => {
                let o = &mut self.overlays[i];
                self.count -= st.link_count(o.set);
                let old = std::mem::replace(&mut o.set, fresh);
                st.release(old);
                o.ansn = ansn;
                o.until = hold_until;
            }
            Err(i) => self.overlays.insert(
                i,
                Overlay {
                    orig: originator,
                    ansn,
                    until: hold_until,
                    set: fresh,
                },
            ),
        }
        TcUpdate {
            applied: true,
            links_changed,
        }
    }

    /// Discards expired overlays, releasing their set references — the
    /// epoch GC: once an originator's every tuple expired, *all* state
    /// about it (set, ANSN record, store slot when last-referenced) is
    /// reclaimed.
    pub fn sweep(&mut self, now: SimTime) {
        if self.overlays.iter().all(|o| o.until > now) {
            return;
        }
        let mut st = self.store.lock();
        let count = &mut self.count;
        self.overlays.retain(|o| {
            if o.until > now {
                return true;
            }
            *count -= st.link_count(o.set);
            st.release(o.set);
            false
        });
    }

    /// Releases every overlay (node reboot).
    pub fn clear(&mut self) {
        let mut st = self.store.lock();
        for o in self.overlays.drain(..) {
            st.release(o.set);
        }
        self.count = 0;
    }

    /// Fills `out` with all live advertised links as
    /// `(originator, advertised, qos)`, ascending by
    /// `(originator, advertised)`; returns the earliest expiry among
    /// them (far-future when empty).
    pub fn links_into(&self, now: SimTime, out: &mut Vec<(NodeId, NodeId, LinkQos)>) -> SimTime {
        out.clear();
        let mut min_expiry = FAR_FUTURE;
        let st = self.store.lock();
        for o in &self.overlays {
            if o.until > now && st.link_count(o.set) > 0 {
                st.links_append(o.set, o.orig, out);
                min_expiry = min_expiry.min(o.until);
            }
        }
        min_expiry
    }

    /// Key-only variant of [`SharedTopology::links_into`].
    pub fn link_keys_into(&self, now: SimTime, out: &mut Vec<(NodeId, NodeId)>) -> SimTime {
        out.clear();
        let mut min_expiry = FAR_FUTURE;
        let st = self.store.lock();
        for o in &self.overlays {
            if o.until > now && st.link_count(o.set) > 0 {
                st.keys_append(o.set, o.orig, out);
                min_expiry = min_expiry.min(o.until);
            }
        }
        min_expiry
    }

    /// All live advertised links as `(originator, advertised, qos)`.
    pub fn links(&self, now: SimTime) -> Vec<(NodeId, NodeId, LinkQos)> {
        let mut out = Vec::new();
        self.links_into(now, &mut out);
        out
    }

    /// Number of stored links (including expired-but-unswept).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` when no links are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Overlays currently held (one per originator).
    pub fn originators(&self) -> usize {
        self.overlays.len()
    }

    /// Node-local resident footprint: overlay entries and the bytes of
    /// the overlay vector plus scratch buffers. The shared packed sets
    /// are **not** included — they are network-level state reported
    /// once through [`SharedLinkStore::gauges`].
    pub fn footprint(&self) -> (usize, usize) {
        let bytes = self.overlays.capacity() * std::mem::size_of::<Overlay>()
            + self.scratch.capacity() * std::mem::size_of::<(NodeId, LinkQos)>()
            + self.old_ids.capacity() * std::mem::size_of::<NodeId>();
        (self.overlays.len(), bytes)
    }
}

impl Drop for SharedTopology {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qolsr_sim::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn q(v: u64) -> LinkQos {
        LinkQos::uniform(v)
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn store_dedups_identical_emissions() {
        let mut st = LinkSetStore::new();
        let links = [(NodeId(2), q(3)), (NodeId(5), q(1))];
        let a = st.acquire(NodeId(1), 10, &links);
        let b = st.acquire(NodeId(1), 10, &links);
        assert_eq!(a, b, "same emission shares one slot");
        let g = st.gauges();
        assert_eq!(g.live_slots, 1);
        assert_eq!(g.resident_links, 2);
        assert_eq!(g.dedup_hits, 1);
        assert_eq!(g.slots_interned, 1);

        let mut out = Vec::new();
        st.links_append(a, NodeId(1), &mut out);
        assert_eq!(
            out,
            vec![(NodeId(1), NodeId(2), q(3)), (NodeId(1), NodeId(5), q(1))]
        );

        st.release(a);
        assert_eq!(st.gauges().live_slots, 1, "b still holds the slot");
        st.release(b);
        let g = st.gauges();
        assert_eq!(g.live_slots, 0);
        assert_eq!(g.resident_links, 0);
    }

    #[test]
    fn store_survives_seq_reuse_with_different_content() {
        let mut st = LinkSetStore::new();
        let a = st.acquire(NodeId(1), 7, &[(NodeId(2), q(1))]);
        // Same key, different payload: must NOT alias.
        let b = st.acquire(NodeId(1), 7, &[(NodeId(3), q(1))]);
        assert_ne!(a, b);
        let mut out = Vec::new();
        st.ids_append(a, &mut out);
        assert_eq!(out, vec![NodeId(2)]);
        out.clear();
        st.ids_append(b, &mut out);
        assert_eq!(out, vec![NodeId(3)]);
        // The key now points at b; releasing a must not unregister it.
        st.release(a);
        let c = st.acquire(NodeId(1), 7, &[(NodeId(3), q(1))]);
        assert_eq!(b, c, "repointed key still dedups");
        st.release(b);
        st.release(c);
        assert_eq!(st.gauges().live_slots, 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut st = LinkSetStore::new();
        let a = st.acquire(NodeId(1), 1, &[(NodeId(2), q(1))]);
        st.release(a);
        let b = st.acquire(NodeId(9), 4, &[(NodeId(3), q(2)), (NodeId(8), q(2))]);
        assert_eq!(st.slots.len(), 1, "slot recycled");
        let mut out = Vec::new();
        st.ids_append(b, &mut out);
        assert_eq!(out, vec![NodeId(3), NodeId(8)]);
    }

    #[test]
    fn empty_sets_intern_cleanly() {
        let mut st = LinkSetStore::new();
        let a = st.acquire(NodeId(4), 0, &[]);
        assert_eq!(st.link_count(a), 0);
        let mut out = Vec::new();
        st.links_append(a, NodeId(4), &mut out);
        assert!(out.is_empty());
        st.release(a);
    }

    #[test]
    fn shared_topology_tracks_reference_semantics() {
        let store = SharedLinkStore::new();
        let mut tb = SharedTopology::new(store.clone());
        let adv = [(NodeId(2), q(1)), (NodeId(3), q(2))];
        let up = tb.process_tc_tracked(NodeId(1), 1, 1, &adv, t(0), t(10));
        assert!(up.applied && up.links_changed);
        assert_eq!(tb.len(), 2);
        // Same pairs, new QoS: applied but not a link change.
        let adv_q = [(NodeId(2), q(9)), (NodeId(3), q(9))];
        let up = tb.process_tc_tracked(NodeId(1), 2, 2, &adv_q, t(1), t(11));
        assert!(up.applied && !up.links_changed);
        // Stale ANSN while live: rejected.
        let up = tb.process_tc_tracked(NodeId(1), 3, 1, &adv, t(2), t(12));
        assert!(!up.applied);
        assert!(!tb.accepts_ansn(NodeId(1), 1, t(2)));
        // After expiry the record is dead: any ANSN is re-learned.
        assert!(tb.accepts_ansn(NodeId(1), 1, t(12)));
        let up = tb.process_tc_tracked(NodeId(1), 4, 0, &adv, t(12), t(20));
        assert!(up.applied && up.links_changed);

        tb.sweep(t(30));
        assert!(tb.is_empty());
        assert_eq!(tb.originators(), 0);
        assert_eq!(store.gauges().live_slots, 0, "epoch GC frees the store");
    }

    #[test]
    fn two_nodes_share_one_slot() {
        let store = SharedLinkStore::new();
        let mut a = SharedTopology::new(store.clone());
        let mut b = SharedTopology::new(store.clone());
        let adv = [(NodeId(7), q(2))];
        a.process_tc_tracked(NodeId(1), 5, 1, &adv, t(0), t(10));
        b.process_tc_tracked(NodeId(1), 5, 1, &adv, t(0), t(10));
        let g = store.gauges();
        assert_eq!(g.live_slots, 1, "one slot for both receivers");
        assert_eq!(g.dedup_hits, 1);
        assert_eq!(a.links(t(1)), b.links(t(1)));
        drop(a);
        assert_eq!(store.gauges().live_slots, 1);
        drop(b);
        assert_eq!(store.gauges().live_slots, 0);
    }
}
