//! The classical RFC 3626 MPR selection heuristic.
//!
//! This is the link-quality-agnostic two-phase greedy the paper describes
//! in §II: first take the 1-hop neighbors that are the *only* cover of
//! some 2-hop neighbor, then repeatedly take the neighbor covering the
//! most still-uncovered 2-hop neighbors. It is kept by every QoS variant
//! as the *flooding* set; the QoS selectors in the `qolsr` core crate
//! replace only the *routing* (advertised) set.

use std::collections::BTreeSet;

use qolsr_graph::{LocalView, NodeId};

/// Computes the MPR set of the view's center using the RFC 3626 greedy
/// heuristic.
///
/// Determinism: ties on coverage are broken by total 2-hop reachability,
/// then by smallest node id (the RFC leaves this open; the paper's
/// analysis in \[3\] notes ~75% of MPRs come from the mandatory first
/// phase, so tie-breaking barely matters — but it must be stable for
/// reproducible experiments).
///
/// # Examples
///
/// ```
/// use qolsr_graph::{fixtures, LocalView};
/// use qolsr_proto::mpr::select_mprs;
///
/// let fig = fixtures::fig2();
/// let view = LocalView::extract(&fig.topo, fig.u);
/// let mprs = select_mprs(&view);
/// // Every 2-hop neighbor of u is covered by some selected MPR.
/// for w in view.two_hop_local() {
///     assert!(view.graph().neighbors(w).iter().any(|&(v, _)| {
///         mprs.contains(&view.global_id(v))
///     }));
/// }
/// ```
pub fn select_mprs(view: &LocalView) -> BTreeSet<NodeId> {
    let g = view.graph();
    let one_hop: Vec<u32> = view.one_hop_local().collect();
    let two_hop: Vec<u32> = view.two_hop_local().collect();

    let mut mprs: BTreeSet<u32> = BTreeSet::new();
    let mut uncovered: BTreeSet<u32> = two_hop.iter().copied().collect();

    // Coverage relation: neighbor v covers 2-hop node w iff (v, w) ∈ E_u.
    let covers = |v: u32, w: u32| g.has_edge(v, w);

    // Phase 1: neighbors that are the sole cover of some 2-hop node.
    for &w in &two_hop {
        let coverers: Vec<u32> = one_hop.iter().copied().filter(|&v| covers(v, w)).collect();
        if coverers.len() == 1 {
            mprs.insert(coverers[0]);
        }
    }
    uncovered.retain(|&w| !one_hop.iter().any(|&v| mprs.contains(&v) && covers(v, w)));

    // Phase 2: greedy by newly-covered count; ties by total reachability,
    // then smallest global id.
    while !uncovered.is_empty() {
        let best = one_hop
            .iter()
            .copied()
            .filter(|v| !mprs.contains(v))
            .map(|v| {
                let newly = uncovered.iter().filter(|&&w| covers(v, w)).count();
                let total = two_hop.iter().filter(|&&w| covers(v, w)).count();
                (newly, total, v)
            })
            .filter(|&(newly, _, _)| newly > 0)
            // Max newly covered, then max total, then *smallest* id.
            .max_by(|a, b| {
                (a.0, a.1, std::cmp::Reverse(view.global_id(a.2))).cmp(&(
                    b.0,
                    b.1,
                    std::cmp::Reverse(view.global_id(b.2)),
                ))
            });
        match best {
            Some((_, _, v)) => {
                mprs.insert(v);
                uncovered.retain(|&w| !covers(v, w));
            }
            // Uncoverable 2-hop nodes cannot exist in well-formed views,
            // but learned views may transiently contain them.
            None => break,
        }
    }

    mprs.into_iter().map(|v| view.global_id(v)).collect()
}

/// Checks the MPR coverage invariant: every 2-hop neighbor of the center
/// is adjacent to at least one selected MPR. Returns the uncovered 2-hop
/// neighbors (empty means the invariant holds).
pub fn uncovered_two_hop(view: &LocalView, mprs: &BTreeSet<NodeId>) -> Vec<NodeId> {
    let g = view.graph();
    view.two_hop_local()
        .filter(|&w| {
            !g.neighbors(w)
                .iter()
                .any(|&(v, _)| mprs.contains(&view.global_id(v)))
        })
        .map(|w| view.global_id(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qolsr_graph::{fixtures, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    fn view_of(topo: &qolsr_graph::Topology, u: NodeId) -> LocalView {
        LocalView::extract(topo, u)
    }

    #[test]
    fn sole_cover_is_mandatory() {
        // 0 — 1 — 2: node 1 is the only cover of 2.
        let mut b = TopologyBuilder::abstract_nodes(3);
        b.link(NodeId(0), NodeId(1), LinkQos::uniform(1)).unwrap();
        b.link(NodeId(1), NodeId(2), LinkQos::uniform(1)).unwrap();
        let t = b.build();
        let mprs = select_mprs(&view_of(&t, NodeId(0)));
        assert_eq!(mprs.into_iter().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn greedy_prefers_bigger_cover() {
        // Center 0 with neighbors 1 and 2; 1 covers {3,4,5}, 2 covers {3}.
        let mut b = TopologyBuilder::abstract_nodes(6);
        for (x, y) in [(0, 1), (0, 2), (1, 3), (1, 4), (1, 5), (2, 3)] {
            b.link(NodeId(x), NodeId(y), LinkQos::uniform(1)).unwrap();
        }
        let t = b.build();
        let mprs = select_mprs(&view_of(&t, NodeId(0)));
        assert_eq!(mprs.into_iter().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn no_two_hop_means_no_mprs() {
        // A triangle: every neighbor's neighbor is already 1-hop.
        let mut b = TopologyBuilder::abstract_nodes(3);
        for (x, y) in [(0, 1), (0, 2), (1, 2)] {
            b.link(NodeId(x), NodeId(y), LinkQos::uniform(1)).unwrap();
        }
        let t = b.build();
        assert!(select_mprs(&view_of(&t, NodeId(0))).is_empty());
    }

    #[test]
    fn coverage_invariant_on_fig2() {
        let f = fixtures::fig2();
        let view = view_of(&f.topo, f.u);
        let mprs = select_mprs(&view);
        assert!(uncovered_two_hop(&view, &mprs).is_empty());
    }

    #[test]
    fn fig1_classic_mprs_cover_everything() {
        // The paper's "only v2 and v5" claim holds for the *QOLSR* QoS
        // heuristics (asserted in the core crate); the classic
        // link-quality-agnostic greedy may additionally pick v1 on a tie.
        // Here we assert the coverage invariant and that v5 carries the
        // network (selected by v3, v4 and v6).
        let f = fixtures::fig1();
        let mut all: BTreeSet<NodeId> = BTreeSet::new();
        for u in f.topo.nodes() {
            let view = view_of(&f.topo, u);
            let mprs = select_mprs(&view);
            assert!(uncovered_two_hop(&view, &mprs).is_empty(), "at {u}");
            all.extend(mprs);
        }
        assert!(all.contains(&f.v[4])); // v5
        assert!(all.contains(&f.v[1])); // v2
    }

    #[test]
    fn deterministic_tie_break() {
        // Neighbors 1 and 2 both cover exactly {3}: smallest id wins.
        let mut b = TopologyBuilder::abstract_nodes(4);
        for (x, y) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.link(NodeId(x), NodeId(y), LinkQos::uniform(1)).unwrap();
        }
        let t = b.build();
        let mprs = select_mprs(&view_of(&t, NodeId(0)));
        assert_eq!(mprs.into_iter().collect::<Vec<_>>(), vec![NodeId(1)]);
    }
}
