//! Dense [`NodeId`] interning, shared across the routing layer and the
//! interned link-state store.
//!
//! Two interning disciplines live here:
//!
//! * [`DenseIds`] — the *per-computation* sorted interner the route BFS
//!   has always used (sorted unique ids; the dense index of an id is its
//!   rank), extracted from `routing.rs` so every layer that needs
//!   "sorted ids → dense indices" shares one implementation;
//! * [`InternTable`] — a *persistent* arrival-order interner for
//!   long-lived state (the shared [`LinkSetStore`]): ids keep their
//!   dense index for the lifetime of the table, so per-originator
//!   bookkeeping can live in flat `Vec`s indexed by dense id instead of
//!   maps keyed by `NodeId`.
//!
//! [`LinkSetStore`]: crate::store::LinkSetStore

use qolsr_graph::NodeId;

/// Per-computation sorted interner: collect the mentioned ids, seal,
/// then resolve ids to dense indices by binary search. Sorted order
/// makes dense-index order equal id order, which deterministic
/// algorithms (the route BFS tie-break) rely on.
#[derive(Debug, Default, Clone)]
pub struct DenseIds {
    ids: Vec<NodeId>,
}

impl DenseIds {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all interned ids, keeping the allocation.
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Adds an id to the pending set (duplicates welcome; they collapse
    /// at [`DenseIds::seal`]).
    pub fn push(&mut self, id: NodeId) {
        self.ids.push(id);
    }

    /// Adds a slice of ids to the pending set.
    pub fn extend_from_slice(&mut self, ids: &[NodeId]) {
        self.ids.extend_from_slice(ids);
    }

    /// Sorts and deduplicates the pending ids; afterwards
    /// [`DenseIds::index_of`] resolves any interned id.
    pub fn seal(&mut self) {
        self.ids.sort_unstable();
        self.ids.dedup();
    }

    /// Dense index of an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned before the last seal.
    pub fn index_of(&self, id: NodeId) -> u32 {
        self.ids.binary_search(&id).expect("id was interned") as u32
    }

    /// The id at dense index `i`.
    pub fn resolve(&self, i: u32) -> NodeId {
        self.ids[i as usize]
    }

    /// Number of interned ids (after seal).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when no ids are interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Persistent arrival-order interner: the first `intern` of an id
/// assigns the next dense index, and the assignment never changes.
///
/// Lookup is a binary search over a sorted `(id, dense)` index — ids
/// are interned rarely (once per node ever seen) while lookups run on
/// the hot path, so the flat sorted index beats a hash map on both
/// memory and cache behaviour at the sizes involved.
///
/// # Examples
///
/// ```
/// use qolsr_graph::NodeId;
/// use qolsr_proto::intern::InternTable;
///
/// let mut t = InternTable::new();
/// let a = t.intern(NodeId(7));
/// let b = t.intern(NodeId(3));
/// assert_eq!(t.intern(NodeId(7)), a, "re-interning is stable");
/// assert_eq!(t.get(NodeId(3)), Some(b));
/// assert_eq!(t.resolve(a), NodeId(7));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InternTable {
    /// Dense index → id, in arrival order.
    ids: Vec<NodeId>,
    /// Sorted `(id, dense)` pairs for lookup.
    index: Vec<(NodeId, u32)>,
}

impl InternTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense index of `id`, assigning the next free index on
    /// first sight.
    pub fn intern(&mut self, id: NodeId) -> u32 {
        match self.index.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.index[i].1,
            Err(i) => {
                let dense = self.ids.len() as u32;
                self.ids.push(id);
                self.index.insert(i, (id, dense));
                dense
            }
        }
    }

    /// The dense index of `id`, if it was ever interned.
    pub fn get(&self, id: NodeId) -> Option<u32> {
        self.index
            .binary_search_by_key(&id, |e| e.0)
            .ok()
            .map(|i| self.index[i].1)
    }

    /// The id behind dense index `dense`.
    ///
    /// # Panics
    ///
    /// Panics if `dense` was never assigned.
    pub fn resolve(&self, dense: u32) -> NodeId {
        self.ids[dense as usize]
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate heap bytes held by the table.
    pub fn approx_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<NodeId>()
            + self.index.capacity() * std::mem::size_of::<(NodeId, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_sorted_semantics() {
        let mut d = DenseIds::new();
        d.push(NodeId(9));
        d.extend_from_slice(&[NodeId(2), NodeId(9), NodeId(4)]);
        d.seal();
        assert_eq!(d.len(), 3);
        assert_eq!(d.index_of(NodeId(2)), 0);
        assert_eq!(d.index_of(NodeId(4)), 1);
        assert_eq!(d.index_of(NodeId(9)), 2);
        assert_eq!(d.resolve(1), NodeId(4));
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn intern_table_is_arrival_ordered_and_stable() {
        let mut t = InternTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(NodeId(5)), None);
        let a = t.intern(NodeId(5));
        let b = t.intern(NodeId(1));
        let c = t.intern(NodeId(5));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, c);
        assert_eq!(t.resolve(0), NodeId(5));
        assert_eq!(t.resolve(1), NodeId(1));
        assert_eq!(t.get(NodeId(1)), Some(1));
        assert_eq!(t.len(), 2);
        assert!(t.approx_bytes() > 0);
    }
}
