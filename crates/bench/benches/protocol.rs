//! Criterion benchmarks for the live protocol substrate: full
//! discrete-event OLSR networks (HELLO/TC exchange, MPR flooding) and the
//! wire codec.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr::policy::SelectorPolicy;
use qolsr::selector::Fnbp;
use qolsr_bench::paper_topology;
use qolsr_graph::NodeId;
use qolsr_metrics::{BandwidthMetric, LinkQos};
use qolsr_proto::messages::{Hello, HelloNeighbor, LinkState, Message, Tc};
use qolsr_proto::network::OlsrNetwork;
use qolsr_proto::wire;
use qolsr_sim::SimDuration;
use std::hint::black_box;

fn bench_network_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("olsr_network");
    group.sample_size(10);
    for density in [6.0, 10.0] {
        let topo = paper_topology(density, 0x0150);
        group.bench_with_input(
            BenchmarkId::new("rfc_policy_10s", format!("n{}", topo.len())),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let mut net = OlsrNetwork::with_defaults(topo.clone(), 1);
                    net.run_for(SimDuration::from_secs(10));
                    black_box(net.total_stats())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fnbp_policy_10s", format!("n{}", topo.len())),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let mut net = OlsrNetwork::new(
                        topo.clone(),
                        qolsr_proto::OlsrConfig::default(),
                        qolsr_sim::RadioConfig::default(),
                        1,
                        |_| SelectorPolicy::new(Fnbp::<BandwidthMetric>::new()),
                    );
                    net.run_for(SimDuration::from_secs(10));
                    black_box(net.total_stats())
                });
            },
        );
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let hello = Message::hello(
        NodeId(1),
        7,
        Hello {
            neighbors: (0..30)
                .map(|i| HelloNeighbor {
                    id: NodeId(i),
                    state: LinkState::Symmetric,
                    qos: LinkQos::uniform(u64::from(i) + 1),
                })
                .collect(),
        },
    );
    let tc = Message::tc(
        NodeId(1),
        9,
        Tc {
            ansn: 4,
            advertised: (0..10)
                .map(|i| (NodeId(i), LinkQos::uniform(u64::from(i) + 1)))
                .collect(),
        },
    );
    group.bench_function("encode_hello_30_neighbors", |b| {
        b.iter(|| black_box(wire::encode(&hello)));
    });
    group.bench_function("encode_tc_10_advertised", |b| {
        b.iter(|| black_box(wire::encode(&tc)));
    });
    let hello_bytes: Bytes = wire::encode(&hello);
    let tc_bytes: Bytes = wire::encode(&tc);
    group.bench_function("decode_hello_30_neighbors", |b| {
        b.iter(|| black_box(wire::decode(hello_bytes.clone()).unwrap()));
    });
    group.bench_function("decode_tc_10_advertised", |b| {
        b.iter(|| black_box(wire::decode(tc_bytes.clone()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_network_convergence, bench_wire_codec);
criterion_main!(benches);
