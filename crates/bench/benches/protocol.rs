//! Criterion benchmarks for the live protocol substrate: full
//! discrete-event OLSR networks (HELLO/TC exchange, MPR flooding), the
//! wire codec, the routing-table hot path (from-scratch interned BFS vs
//! the `BTreeMap` reference vs the incremental cache), HELLO/TC table
//! integration throughput, and the event-queue scheduler (timer wheel vs
//! binary heap) under a HELLO/TC-like timer mix.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr::policy::SelectorPolicy;
use qolsr::selector::Fnbp;
use qolsr_bench::paper_topology;
use qolsr_graph::NodeId;
use qolsr_metrics::{BandwidthMetric, LinkQos};
use qolsr_proto::messages::{Hello, HelloNeighbor, LinkState, Message, Tc};
use qolsr_proto::network::OlsrNetwork;
use qolsr_proto::routing::{compute_routes, compute_routes_keys_into, reference_routes};
use qolsr_proto::tables::{NeighborTables, TopologyBase};
use qolsr_proto::wire;
use qolsr_proto::{RouteCache, RouteScratch};
use qolsr_sim::queue::{EventQueue, QueueItem, SchedulerKind};
use qolsr_sim::{SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn bench_network_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("olsr_network");
    group.sample_size(10);
    for density in [6.0, 10.0] {
        let topo = paper_topology(density, 0x0150);
        group.bench_with_input(
            BenchmarkId::new("rfc_policy_10s", format!("n{}", topo.len())),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let mut net = OlsrNetwork::with_defaults(topo.clone(), 1);
                    net.run_for(SimDuration::from_secs(10));
                    black_box(net.total_stats())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fnbp_policy_10s", format!("n{}", topo.len())),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let mut net = OlsrNetwork::new(
                        topo.clone(),
                        qolsr_proto::OlsrConfig::default(),
                        qolsr_sim::RadioConfig::default(),
                        1,
                        |_| SelectorPolicy::new(Fnbp::<BandwidthMetric>::new()),
                    );
                    net.run_for(SimDuration::from_secs(10));
                    black_box(net.total_stats())
                });
            },
        );
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let hello = Message::hello(
        NodeId(1),
        7,
        Hello {
            neighbors: (0..30)
                .map(|i| HelloNeighbor {
                    id: NodeId(i),
                    state: LinkState::Symmetric,
                    qos: LinkQos::uniform(u64::from(i) + 1),
                })
                .collect(),
        },
    );
    let tc = Message::tc(
        NodeId(1),
        9,
        Tc {
            ansn: 4,
            advertised: (0..10)
                .map(|i| (NodeId(i), LinkQos::uniform(u64::from(i) + 1)))
                .collect(),
        },
    );
    group.bench_function("encode_hello_30_neighbors", |b| {
        b.iter(|| black_box(wire::encode(&hello)));
    });
    group.bench_function("encode_tc_10_advertised", |b| {
        b.iter(|| black_box(wire::encode(&tc)));
    });
    let hello_bytes: Bytes = wire::encode(&hello);
    let tc_bytes: Bytes = wire::encode(&tc);
    group.bench_function("decode_hello_30_neighbors", |b| {
        b.iter(|| black_box(wire::decode(hello_bytes.clone()).unwrap()));
    });
    group.bench_function("decode_tc_10_advertised", |b| {
        b.iter(|| black_box(wire::decode(tc_bytes.clone()).unwrap()));
    });
    group.finish();
}

/// Synthetic route inputs shaped like a converged node's knowledge at
/// density ~10: `deg` symmetric neighbors, their reported 2-hop links,
/// and a TC-learned advertised topology spanning all `n` nodes.
#[allow(clippy::type_complexity)]
fn route_inputs(
    n: u32,
    deg: u32,
    seed: u64,
) -> (
    Vec<(NodeId, LinkQos)>,
    Vec<(NodeId, NodeId, LinkQos)>,
    Vec<(NodeId, NodeId, LinkQos)>,
) {
    let mut rng = SimRng::seed_from_u64(seed);
    let q = LinkQos::uniform(1);
    let sym: Vec<(NodeId, LinkQos)> = (1..=deg).map(|i| (NodeId(i), q)).collect();
    let mut reported = Vec::new();
    for &(v, _) in &sym {
        for _ in 0..deg {
            reported.push((v, NodeId(rng.next_below(u64::from(n)) as u32), q));
        }
    }
    // Advertised links: a connected ring over all nodes plus random
    // chords, approximating TC-learned topology at mean degree ~4.
    let mut advertised = Vec::new();
    for i in 0..n {
        advertised.push((NodeId(i), NodeId((i + 1) % n), q));
    }
    for _ in 0..n {
        let a = NodeId(rng.next_below(u64::from(n)) as u32);
        let b = NodeId(rng.next_below(u64::from(n)) as u32);
        advertised.push((a, b, q));
    }
    (sym, reported, advertised)
}

fn bench_compute_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_routes");
    group.sample_size(10);
    for n in [1000u32, 4000] {
        let (sym, reported, advertised) = route_inputs(n, 10, 0x0150);
        let sym_keys: Vec<NodeId> = sym.iter().map(|&(v, _)| v).collect();
        let rep_keys: Vec<(NodeId, NodeId)> = reported.iter().map(|&(a, b, _)| (a, b)).collect();
        let adv_keys: Vec<(NodeId, NodeId)> = advertised.iter().map(|&(a, b, _)| (a, b)).collect();
        group.bench_with_input(BenchmarkId::new("reference_btreemap", n), &n, |b, _| {
            b.iter(|| black_box(reference_routes(NodeId(0), &sym, &reported, &advertised)));
        });
        group.bench_with_input(BenchmarkId::new("interned_alloc", n), &n, |b, _| {
            b.iter(|| black_box(compute_routes(NodeId(0), &sym, &reported, &advertised)));
        });
        group.bench_with_input(BenchmarkId::new("interned_scratch", n), &n, |b, _| {
            let mut scratch = RouteScratch::new();
            let mut out = Vec::new();
            b.iter(|| {
                compute_routes_keys_into(
                    NodeId(0),
                    &sym_keys,
                    &rep_keys,
                    &adv_keys,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            });
        });
    }
    group.finish();
}

/// Tables primed with `n`-node knowledge for cache/process benches.
fn primed_tables(n: u32, deg: u32) -> (NeighborTables, TopologyBase, SimTime) {
    let (sym, reported, advertised) = route_inputs(n, deg, 0x0151);
    let mut nt = NeighborTables::new();
    let now = SimTime::ZERO;
    let hold = now + SimDuration::from_secs(6);
    for &(v, qos) in &sym {
        let mut neighbors = vec![HelloNeighbor {
            id: NodeId(0),
            state: LinkState::Symmetric,
            qos,
        }];
        neighbors.extend(
            reported
                .iter()
                .filter(|&&(via, _, _)| via == v)
                .map(|&(_, w, qos)| HelloNeighbor {
                    id: w,
                    state: LinkState::Symmetric,
                    qos,
                }),
        );
        nt.process_hello(NodeId(0), v, qos, &Hello { neighbors }, now, hold);
    }
    let mut tb = TopologyBase::new();
    let t_hold = now + SimDuration::from_secs(15);
    for chunk in advertised.chunks(4) {
        let orig = chunk[0].0;
        let adv: Vec<(NodeId, LinkQos)> = chunk.iter().map(|&(_, b, q)| (b, q)).collect();
        tb.process_tc_tracked(orig, 1, &adv, now, t_hold);
    }
    (nt, tb, now)
}

fn bench_route_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_cache");
    group.sample_size(10);
    for n in [1000u32, 4000] {
        let (nt, tb, now) = primed_tables(n, 10);
        let query_at = now + SimDuration::from_secs(1);
        group.bench_with_input(BenchmarkId::new("recompute_every_query", n), &n, |b, _| {
            let mut cache = RouteCache::new();
            b.iter(|| {
                cache.invalidate();
                cache.ensure(NodeId(0), &nt, &tb, query_at);
                black_box(cache.entries().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("cached_query", n), &n, |b, _| {
            let mut cache = RouteCache::new();
            cache.ensure(NodeId(0), &nt, &tb, query_at);
            b.iter(|| {
                cache.ensure(NodeId(0), &nt, &tb, query_at);
                black_box(cache.entries().len())
            });
        });
    }
    group.finish();
}

fn bench_table_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_integration");
    // HELLO integration: steady-state refresh from a 30-neighbor sender.
    let hello = Hello {
        neighbors: (0..30)
            .map(|i| HelloNeighbor {
                id: NodeId(i),
                state: LinkState::Symmetric,
                qos: LinkQos::uniform(u64::from(i) + 1),
            })
            .collect(),
    };
    group.bench_function("process_hello_30_neighbors", |b| {
        let mut nt = NeighborTables::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_micros(10);
            black_box(nt.process_hello(
                NodeId(0),
                NodeId(31),
                LinkQos::uniform(5),
                &hello,
                now,
                now + SimDuration::from_secs(6),
            ))
        });
    });
    // TC integration: steady-state refresh of a 10-link advertised set.
    let advertised: Vec<(NodeId, LinkQos)> = (0..10)
        .map(|i| (NodeId(i), LinkQos::uniform(u64::from(i) + 1)))
        .collect();
    group.bench_function("process_tc_10_advertised", |b| {
        let mut tb = TopologyBase::new();
        let mut now = SimTime::ZERO;
        let mut ansn = 0u16;
        b.iter(|| {
            now += SimDuration::from_micros(10);
            ansn = ansn.wrapping_add(1);
            black_box(tb.process_tc_tracked(
                NodeId(42),
                ansn,
                &advertised,
                now,
                now + SimDuration::from_secs(15),
            ))
        });
    });
    group.finish();
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
struct BenchEvent {
    time: u64,
    seq: u64,
}

impl QueueItem for BenchEvent {
    fn due_micros(&self) -> u64 {
        self.time
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    // A HELLO/TC-like mix: per pop, re-arm a periodic timer (2 s or 5 s
    // ahead) and push a burst of deliveries (1 ms ahead), mirroring the
    // engine's event profile during a live-protocol run.
    for (label, kind) in [
        ("wheel", SchedulerKind::TimerWheel),
        ("heap", SchedulerKind::BinaryHeap),
    ] {
        group.bench_with_input(
            BenchmarkId::new("hello_tc_mix_n1000", label),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut q: EventQueue<BenchEvent> = EventQueue::new(kind);
                    let mut seq = 0u64;
                    for i in 0..1000u64 {
                        q.push(BenchEvent {
                            time: i * 2_000,
                            seq,
                        });
                        seq += 1;
                    }
                    let mut popped = 0u64;
                    for _ in 0..20_000 {
                        let ev = q.pop().expect("queue stays loaded");
                        popped += 1;
                        // Re-arm: alternate HELLO (2 s) / TC (5 s).
                        let period = if ev.seq.is_multiple_of(5) {
                            5_000_000
                        } else {
                            2_000_000
                        };
                        q.push(BenchEvent {
                            time: ev.time + period,
                            seq,
                        });
                        seq += 1;
                        // Delivery fan-out: three frames 1 ms out.
                        for k in 0..3 {
                            q.push(BenchEvent {
                                time: ev.time + 1_000 + k,
                                seq,
                            });
                            seq += 1;
                        }
                        // Drain the deliveries to keep the queue bounded.
                        for _ in 0..3 {
                            q.pop();
                            popped += 1;
                        }
                    }
                    black_box(popped)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_network_convergence,
    bench_wire_codec,
    bench_compute_routes,
    bench_route_cache,
    bench_table_integration,
    bench_scheduler
);
criterion_main!(benches);
