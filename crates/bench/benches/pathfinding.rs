//! Criterion benchmarks for the path-algorithm substrate: best-path
//! Dijkstra (both metric families), exact first-hop sets, shortest-best
//! route extraction and the RNG reduction — the inner loops of every
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr_bench::{busiest_view, paper_topology, sample_route_pair};
use qolsr_graph::paths::{best_paths, best_route, first_hop_table};
use qolsr_graph::reduction::rng_reduce;
use qolsr_metrics::{BandwidthMetric, DelayMetric};
use std::hint::black_box;

fn bench_best_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_paths");
    for density in [10.0, 20.0, 30.0] {
        let topo = paper_topology(density, 0xBE9C);
        let n = topo.len();
        group.bench_with_input(
            BenchmarkId::new("widest/topology", format!("d{density}_n{n}")),
            &topo,
            |b, topo| {
                b.iter(|| black_box(best_paths::<BandwidthMetric>(topo.graph(), 0)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("min_delay/topology", format!("d{density}_n{n}")),
            &topo,
            |b, topo| {
                b.iter(|| black_box(best_paths::<DelayMetric>(topo.graph(), 0)));
            },
        );
    }
    group.finish();
}

fn bench_first_hops(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_hop_table");
    for density in [10.0, 20.0, 30.0] {
        let topo = paper_topology(density, 0xF14B);
        let view = busiest_view(&topo);
        let id = format!("d{density}_view{}", view.len());
        group.bench_with_input(
            BenchmarkId::new("bandwidth/local_view", &id),
            &view,
            |b, view| {
                b.iter(|| {
                    black_box(first_hop_table::<BandwidthMetric>(
                        view.graph(),
                        view.center_local(),
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delay/local_view", &id),
            &view,
            |b, view| {
                b.iter(|| {
                    black_box(first_hop_table::<DelayMetric>(
                        view.graph(),
                        view.center_local(),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_best_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_route");
    let topo = paper_topology(20.0, 0x0A7E);
    let (s, t) = sample_route_pair(&topo).expect("connected pair");
    group.bench_function("shortest_widest/topology_d20", |b| {
        b.iter(|| black_box(best_route::<BandwidthMetric>(topo.graph(), s.0, t.0)));
    });
    group.bench_function("shortest_fastest/topology_d20", |b| {
        b.iter(|| black_box(best_route::<DelayMetric>(topo.graph(), s.0, t.0)));
    });
    group.finish();
}

fn bench_rng_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_reduce");
    for density in [15.0, 30.0] {
        let topo = paper_topology(density, 0x4E6);
        let view = busiest_view(&topo);
        group.bench_with_input(
            BenchmarkId::new("bandwidth/local_view", format!("d{density}")),
            &view,
            |b, view| {
                b.iter(|| black_box(rng_reduce::<BandwidthMetric>(view.graph())));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_paths,
    bench_first_hops,
    bench_best_route,
    bench_rng_reduce
);
criterion_main!(benches);
