//! Criterion benchmarks for the ANS selectors — per-node selection cost
//! (the quantity a deployment cares about: FNBP's extra Dijkstras vs the
//! cheap QOLSR greedy) and whole-network advertised-graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr::advertised::build_advertised;
use qolsr::selector::{AnsSelector, ClassicMpr, Fnbp, MprVariant, QolsrMpr, TopologyFiltering};
use qolsr_bench::{busiest_view, paper_topology};
use qolsr_metrics::BandwidthMetric;
use std::hint::black_box;

fn selectors() -> Vec<(&'static str, Box<dyn AnsSelector>)> {
    vec![
        ("classic_mpr", Box::new(ClassicMpr::new())),
        (
            "qolsr_mpr1",
            Box::new(QolsrMpr::<BandwidthMetric>::new(MprVariant::Mpr1)),
        ),
        (
            "qolsr_mpr2",
            Box::new(QolsrMpr::<BandwidthMetric>::new(MprVariant::Mpr2)),
        ),
        (
            "topology_filtering",
            Box::new(TopologyFiltering::<BandwidthMetric>::new()),
        ),
        ("fnbp", Box::new(Fnbp::<BandwidthMetric>::new())),
    ]
}

fn bench_single_node_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_one_node");
    for density in [10.0, 20.0, 30.0] {
        let topo = paper_topology(density, 0x5E1);
        let view = busiest_view(&topo);
        for (name, sel) in selectors() {
            group.bench_with_input(
                BenchmarkId::new(name, format!("d{density}_view{}", view.len())),
                &view,
                |b, view| {
                    b.iter(|| black_box(sel.select(view)));
                },
            );
        }
    }
    group.finish();
}

fn bench_network_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_advertised");
    group.sample_size(10);
    let topo = paper_topology(15.0, 0xAD50);
    for (name, sel) in selectors() {
        group.bench_with_input(
            BenchmarkId::new(name, format!("n{}", topo.len())),
            &topo,
            |b, topo| {
                b.iter(|| black_box(build_advertised(topo, sel.as_ref(), 1)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_node_selection,
    bench_network_selection
);
criterion_main!(benches);
