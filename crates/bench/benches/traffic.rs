//! Criterion benchmarks pricing the data plane: the per-hop forwarding
//! primitives (data-frame encode, peek, header patch, queue churn) and
//! the integrated cost of running seeded flows through a live network —
//! what one forwarded payload packet adds on top of the control plane.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr_bench::paper_topology;
use qolsr_graph::NodeId;
use qolsr_proto::messages::{DataBody, Message};
use qolsr_proto::network::OlsrNetwork;
use qolsr_proto::wire;
use qolsr_sim::{FlowModel, FlowSpec, SimDuration, SimTime, TxQueue};
use std::hint::black_box;

fn data_frame(payload_len: u16) -> Bytes {
    wire::encode(&Message::data(
        NodeId(3),
        41,
        32,
        DataBody {
            dest: NodeId(250),
            flow: 7,
            injected_us: 1_234_567,
            payload_len,
        },
    ))
}

fn bench_data_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_codec");
    for payload in [64u16, 1024] {
        let msg = Message::data(
            NodeId(3),
            41,
            32,
            DataBody {
                dest: NodeId(250),
                flow: 7,
                injected_us: 1_234_567,
                payload_len: payload,
            },
        );
        group.bench_with_input(BenchmarkId::new("encode", payload), &msg, |b, msg| {
            b.iter(|| black_box(wire::encode(msg)));
        });
        let frame = data_frame(payload);
        // The receive fast path: classify + header-only peek, no body
        // materialization.
        group.bench_with_input(BenchmarkId::new("peek", payload), &frame, |b, frame| {
            b.iter(|| black_box(wire::peek(frame).unwrap()));
        });
        // The relay hot path: one header patch (TTL down, hop up) on the
        // shared buffer — no re-encode of the payload.
        group.bench_with_input(BenchmarkId::new("forward", payload), &frame, |b, frame| {
            b.iter(|| black_box(wire::forward(frame).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("decode_full", payload),
            &frame,
            |b, frame| {
                b.iter(|| black_box(wire::decode(frame.clone()).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_tx_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("tx_queue");
    let frame = data_frame(256);
    // Steady-state store-and-forward churn at half occupancy: one push +
    // one pop per iteration, the queue work of one relayed packet.
    group.bench_function("push_pop_half_full_cap64", |b| {
        let mut q: TxQueue<Bytes> = TxQueue::new(64);
        for _ in 0..32 {
            q.push(frame.clone()).unwrap();
        }
        b.iter(|| {
            q.push(frame.clone()).unwrap();
            black_box(q.pop())
        });
    });
    // Tail-drop path: rejection cost at capacity.
    group.bench_function("push_rejected_at_capacity", |b| {
        let mut q: TxQueue<Bytes> = TxQueue::new(64);
        while q.push(frame.clone()).is_ok() {}
        b.iter(|| black_box(q.push(frame.clone()).is_err()));
    });
    group.finish();
}

fn bench_live_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_forwarding");
    group.sample_size(10);
    let topo = paper_topology(10.0, 0x0150);
    let n = topo.len();
    // Flows between fixed far-apart endpoints; CBR at 20 ms so the run
    // is dominated by per-hop data forwarding, not flow bookkeeping.
    let start = SimTime::ZERO + SimDuration::from_secs(10);
    let flows: Vec<FlowSpec> = (0..8u16)
        .map(|i| FlowSpec {
            id: i,
            src: NodeId(u32::from(i)),
            dst: NodeId((n as u32) - 1 - u32::from(i)),
            model: FlowModel::Cbr {
                interval: SimDuration::from_millis(20),
            },
            payload: 256,
            start,
        })
        .collect();
    // Control plane alone vs control plane + flows over the same seeded
    // world: the delta prices the data plane per simulated second.
    group.bench_with_input(
        BenchmarkId::new("control_only_15s", format!("n{n}")),
        &topo,
        |b, topo| {
            b.iter(|| {
                let mut net = OlsrNetwork::with_defaults(topo.clone(), 1);
                net.run_for(SimDuration::from_secs(15));
                black_box(net.engine_stats().deliveries)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("with_8_cbr_flows_15s", format!("n{n}")),
        &topo,
        |b, topo| {
            b.iter(|| {
                let mut net = OlsrNetwork::with_defaults(topo.clone(), 1);
                net.install_flows(&flows, 1);
                net.run_for(SimDuration::from_secs(15));
                let t = net.total_traffic();
                black_box((t.injected, t.delivered, t.data_tx))
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_data_codec,
    bench_tx_queue,
    bench_live_forwarding
);
criterion_main!(benches);
