//! Criterion benchmarks over the figure pipelines themselves: one
//! reduced-scale end-to-end regeneration per paper figure, so regressions
//! in any layer (deployment, selection, routing, aggregation) surface as
//! a benchmark change. These are *pipeline* benches — the figure numbers
//! they produce use few runs and are not the reproduction outputs (use
//! the `figures` binary for those).

use criterion::{criterion_group, criterion_main, Criterion};

use qolsr::eval::{run_experiment, EvalConfig, SelectorKind};
use qolsr_metrics::{BandwidthMetric, DelayMetric};
use std::hint::black_box;

/// Reduced-scale pipeline settings: one run over two densities on a
/// quarter-size field keeps a full pipeline iteration well under a
/// second, so criterion can sample it meaningfully.
fn micro_cfg(mut cfg: EvalConfig) -> EvalConfig {
    cfg.runs = 1;
    cfg.densities = vec![10.0, 20.0];
    cfg.field = (500.0, 500.0);
    cfg.threads = 1;
    cfg.seed = 0xF16;
    cfg
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipeline");
    group.sample_size(10);
    group.bench_function("fig6_fig8_bandwidth_micro", |b| {
        let cfg = micro_cfg(EvalConfig::paper_bandwidth(0));
        b.iter(|| {
            let r = run_experiment::<BandwidthMetric>(&cfg, &SelectorKind::PAPER);
            black_box((r.ans_size_figure("fig6"), r.overhead_figure("fig8")))
        });
    });
    group.bench_function("fig7_fig9_delay_micro", |b| {
        let cfg = micro_cfg(EvalConfig::paper_delay(0));
        b.iter(|| {
            let r = run_experiment::<DelayMetric>(&cfg, &SelectorKind::PAPER);
            black_box((r.ans_size_figure("fig7"), r.overhead_figure("fig9")))
        });
    });
    group.finish();
}

fn bench_single_density_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_density");
    group.sample_size(10);
    for density in [10.0, 25.0] {
        let mut cfg = micro_cfg(EvalConfig::paper_bandwidth(0));
        cfg.densities = vec![density];
        group.bench_function(format!("bandwidth_paper_selectors_d{density}"), |b| {
            b.iter(|| {
                black_box(run_experiment::<BandwidthMetric>(
                    &cfg,
                    &SelectorKind::PAPER,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines, bench_single_density_run);
criterion_main!(benches);
