//! Criterion benchmarks of the region-sharded executor: the same
//! n = 1000 live HELLO/TC protocol run executed on the single-queue
//! reference engine and on the sharded engine at 1, 2 and 4 shards.
//!
//! `sharded/1` vs `single_queue` isolates the pure cost of the
//! window/barrier machinery (provisional sequencing, record logs, the
//! k-way merge) with zero cross-shard traffic; 2 and 4 shards add the
//! cross-shard frame hand-off. On a single-core host the sharded runs
//! cannot win wall-clock — the point of the group is to price the
//! barrier/merge overhead that a multi-core host would have to amortize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr::policy::SelectorPolicy;
use qolsr::selector::Fnbp;
use qolsr_graph::deploy::{deploy_at, Deployment, UniformWeights};
use qolsr_graph::{Point2, Topology};
use qolsr_metrics::BandwidthMetric;
use qolsr_proto::network::OlsrNetwork;
use qolsr_proto::OlsrConfig;
use qolsr_sim::{ExecMode, RadioConfig, SchedulerKind, SimDuration, SimRng};
use std::f64::consts::PI;
use std::hint::black_box;

/// Uniform deployment of `n` nodes at the paper's density 10 / radius
/// 100, field grown with `n` — the same construction as the live scale
/// sweep, so numbers line up with `figures scale --live`.
fn field_topology(n: usize, seed: u64) -> Topology {
    let (radius, density) = (100.0, 10.0);
    let side = (n as f64 * PI * radius * radius / density).sqrt();
    let mut rng = SimRng::seed_from_u64(seed);
    let positions: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.next_f64() * side, rng.next_f64() * side))
        .collect();
    let deployment = Deployment {
        width: side,
        height: side,
        radius,
        mean_degree: density,
    };
    deploy_at(
        &deployment,
        &UniformWeights::paper_defaults(),
        positions,
        &mut rng,
    )
}

fn run(topo: &Topology, exec: ExecMode, secs: u64) -> u64 {
    let mut net = OlsrNetwork::with_exec(
        topo.clone(),
        OlsrConfig::default(),
        RadioConfig::default(),
        1,
        SchedulerKind::default(),
        exec,
        |_| SelectorPolicy::new(Fnbp::<BandwidthMetric>::new()),
    );
    net.run_for(SimDuration::from_secs(secs));
    net.engine_stats().events
}

fn bench_sharded_engine(c: &mut Criterion) {
    let topo = field_topology(1000, 0x0150);
    let secs = 3;
    let mut group = c.benchmark_group("sharded_engine_n1000");
    group.sample_size(10);
    group.bench_function("single_queue", |b| {
        b.iter(|| black_box(run(&topo, ExecMode::SingleShard, secs)))
    });
    for shards in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(run(&topo, ExecMode::Sharded { shards }, secs))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_engine);
criterion_main!(benches);
