//! Criterion benchmarks for the [`SpatialGrid`] neighbor index: the
//! radius-relink workload — the per-tick core of `RandomWaypoint` and
//! the per-rejoin core of `PoissonChurn` — grid vs brute-force O(n²)
//! reference at n = 1000 and n = 4000, plus the incremental update path.
//! The raw position scan is where brute force is *strongest* (branchless
//! sequential arithmetic), so the crossover here is the conservative
//! bound; in the real scenario tick the naive path also pays per-pair
//! activity and link lookups.
//!
//! [`SpatialGrid`]: qolsr_graph::SpatialGrid

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qolsr_graph::{NodeId, Point2, SpatialGrid};
use qolsr_sim::SimRng;
use std::hint::black_box;

const RADIUS: f64 = 100.0;

/// Field side holding `n` nodes at mean degree 10 with R = 100.
fn side_for(n: usize) -> f64 {
    (n as f64 * std::f64::consts::PI * RADIUS * RADIUS / 10.0).sqrt()
}

fn positions(n: usize, seed: u64) -> Vec<Point2> {
    let side = side_for(n);
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.next_f64() * side, rng.next_f64() * side))
        .collect()
}

/// Full relink discovery, brute force: every unordered pair distance-
/// tested — the path `NeighborScan::Naive` keeps for differential tests.
fn naive_relink(ps: &[Point2]) -> usize {
    let r_sq = RADIUS * RADIUS;
    let mut in_range = 0;
    for i in 0..ps.len() {
        for j in (i + 1)..ps.len() {
            if ps[i].distance_sq(ps[j]) <= r_sq {
                in_range += 1;
            }
        }
    }
    in_range
}

/// Full relink discovery through a pre-built grid: one radius query per
/// node (each in-range pair counted once via the id order).
fn grid_relink(grid: &SpatialGrid, ps: &[Point2], scratch: &mut Vec<NodeId>) -> usize {
    let mut in_range = 0;
    for (i, &p) in ps.iter().enumerate() {
        grid.neighbors_within_into(p, RADIUS, scratch);
        in_range += scratch.iter().filter(|m| m.index() > i).count();
    }
    in_range
}

fn bench_relink(c: &mut Criterion) {
    let mut group = c.benchmark_group("relink");
    group.sample_size(10);
    for n in [1000usize, 4000] {
        let side = side_for(n);
        let ps = positions(n, 0x5E1D);
        let grid = SpatialGrid::from_positions(side, side, RADIUS, &ps);

        // Both discovery paths must agree before their times mean
        // anything.
        let mut scratch = Vec::new();
        assert_eq!(naive_relink(&ps), grid_relink(&grid, &ps, &mut scratch));

        group.bench_with_input(BenchmarkId::new("naive_all_pairs", n), &ps, |b, ps| {
            b.iter(|| black_box(naive_relink(ps)));
        });
        group.bench_with_input(BenchmarkId::new("grid_queries", n), &ps, |b, ps| {
            let mut scratch = Vec::new();
            b.iter(|| black_box(grid_relink(&grid, ps, &mut scratch)));
        });
        group.bench_with_input(BenchmarkId::new("grid_build", n), &ps, |b, ps| {
            b.iter(|| black_box(SpatialGrid::from_positions(side, side, RADIUS, ps)));
        });
    }
    group.finish();
}

/// The waypoint-tick update path: move 10% of the nodes a small step and
/// re-query around each mover.
fn bench_incremental(c: &mut Criterion) {
    const N: usize = 1000;
    let side = side_for(N);
    let ps = positions(N, 0xA11E);
    let movers: Vec<u32> = (0..N as u32).step_by(10).collect();

    let mut group = c.benchmark_group("incremental_n1000");
    group.sample_size(10);
    group.bench_function("move_and_requery_10pct", |b| {
        let mut grid = SpatialGrid::from_positions(side, side, RADIUS, &ps);
        let mut rng = SimRng::seed_from_u64(3);
        let mut scratch = Vec::new();
        b.iter(|| {
            for &m in &movers {
                let node = NodeId(m);
                let p = grid.position(node).expect("mover is indexed");
                let to = Point2::new(
                    (p.x + rng.next_f64() * 10.0 - 5.0).clamp(0.0, side),
                    (p.y + rng.next_f64() * 10.0 - 5.0).clamp(0.0, side),
                );
                grid.move_node(node, to);
                grid.neighbors_within_into(to, RADIUS, &mut scratch);
                black_box(scratch.len());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_relink, bench_incremental);
criterion_main!(benches);
