//! Figure-regeneration harness: reproduces every evaluation figure of
//! *"Towards an efficient QoS based selection of neighbors in QOLSR"*
//! (Khadar, Mitton, Simplot-Ryl — SN/ICDCS 2010).
//!
//! ```text
//! Usage: figures [COMMAND] [OPTIONS]
//!
//! Commands:
//!   fig6        advertised set size, bandwidth metric (densities 10–35)
//!   fig7        advertised set size, delay metric (densities 5–30)
//!   fig8        bandwidth overhead vs centralized optimum
//!   fig9        delay overhead vs centralized optimum
//!   all         figures 6–9 (two experiment passes)          [default]
//!   ablations   id-rule delivery, all-selector sweep, routing strategies,
//!               weight intervals
//!   robustness  link-failure study with stale advertised sets
//!   churn       live-protocol churn robustness: route validity and
//!               advertised staleness over time under random-waypoint
//!               motion + Poisson churn + weight drift
//!   scale       wall-clock scale sweep over n ∈ {250, 1000, 4000}
//!               nodes: waypoint tick cost (SpatialGrid path) and
//!               whole-network selection cost per world (--runs is
//!               capped at 10 — timing, not statistics); with --live,
//!               runs the full HELLO/TC protocol at each size instead
//!               and reports wall-clock per simulated second plus
//!               engine/routing-cache counters
//!   overhead    control-overhead comparison: TC scoping policy
//!               (RFC-uniform vs fisheye rings) × network size, full
//!               protocol on shared seeded deployments, reporting TC
//!               deliveries, control bytes, peek-decode savings, route
//!               validity and wall-clock (--runs capped at 5)
//!   loss        lossy-radio sweep: full protocol per selector under
//!               PhyModel::Lossy as the edge drop probability rises,
//!               reporting frame delivery ratio, route validity and
//!               MPR-set churn (static worlds — loss is the only
//!               stressor); --hysteresis / --etx enable the
//!               quality-aware link sensing knobs
//!   faults      route-recovery experiment: inject a partition,
//!               regional blackout or crash-reboot storm into a
//!               converged static network, heal it, and report
//!               per-selector time-to-reconvergence, residual stale
//!               exposure and control-byte recovery cost
//!   traffic     data-plane QoS experiment: seeded CBR + bursty-video
//!               flows forwarded hop by hop over the live route caches
//!               (bounded transmit queues, lossy PHY, mobility/churn),
//!               reporting per-selector end-to-end delivery ratio,
//!               mean/p99 delay, jitter and a drop-cause breakdown per
//!               loss level
//!
//! Options:
//!   --runs N     topologies per density (default 100; paper: 100)
//!   --seed S     master seed (default 0x51C02010)
//!   --threads T  worker threads (default: all cores)
//!   --metric M   churn/loss/faults/traffic metric: bandwidth (default)
//!                or delay
//!   --live       scale only: live-protocol phase (--runs capped at 5)
//!   --sizes L    scale/overhead: comma-separated node counts
//!                (default 250,1000,4000; lets CI smoke at small n —
//!                the n=4000 live phases need tens of minutes per run)
//!   --store S    scale --live only: topology-base formulation,
//!                shared (default) or per-node (the pre-store
//!                reference — use one process per formulation when
//!                comparing RSS)
//!   --dup-store S
//!                scale --live only: duplicate-set formulation, ring
//!                (default) or per-originator (the pre-ring reference)
//!   --shards K   scale --live / overhead / churn / loss / faults /
//!                traffic: engine shard count (default 1 = single-queue
//!                reference engine; K >= 2 runs the region-sharded
//!                parallel engine, which must produce identical
//!                counters)
//!   --lossy      scale --live only: run the radio under
//!                PhyModel::Lossy (40% edge drop) instead of Ideal —
//!                combined with --verify-shards this is the CI gate
//!                that loss sampling commutes with the barrier merge
//!   --nodes N    loss/faults/traffic: nodes per world (default 250;
//!                faults sizes the field for ~N at density 10)
//!   --levels L   loss/traffic: comma-separated edge drop probabilities
//!                in ppm (loss default
//!                0,100000,200000,400000,600000,800000; traffic default
//!                0,200000,400000)
//!   --flows N    traffic only: concurrent flows per world (default 16;
//!                odd-indexed flows are bursty video, the rest CBR)
//!   --static     traffic only: keep the world static (no mobility or
//!                churn) so loss is the only stressor
//!   --hysteresis loss only: enable RFC 3626 §14 link hysteresis
//!   --etx        loss only: advertise ETX/InvETX-reshaped link QoS
//!   --capture-us W
//!                loss only: collision capture window in microseconds
//!                (default 0 = collisions off, so the x = 0 baseline is
//!                lossless; a non-zero window adds a level-independent
//!                collision floor)
//!   --fault F    faults only: comma-separated fault kinds to inject
//!                (partition|blackout|crash-storm; default partition)
//!   --corrupt    faults only: also corrupt frames on the radio path
//!                (seeded bit-flips/truncation, 2% of deliveries)
//!   --leave-rate L
//!                churn only: comma-separated departure rates; sweeps
//!                churn intensity as the x-axis instead of time
//!   --verify-shards
//!                scale --live / faults / traffic: run the sharded
//!                experiment AND a --shards 1 reference in lockstep,
//!                exiting non-zero on any divergence (CI determinism
//!                gate)
//!   --warmup N   scale --live only: unmeasured warm-up seconds
//!                (default 15)
//!   --seconds N  scale --live only: measured simulated seconds
//!                (default 10)
//!   --max-resident-bytes B
//!                scale --live only: exit non-zero if any size's mean
//!                resident protocol-table bytes exceed B (CI memory
//!                budget)
//!   --quick      shorthand for --runs 10
//!   --out DIR    also write CSV files into DIR (default: results/)
//!   --no-csv     print to stdout only
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qolsr::eval::figures::{
    ablation_all_selectors, ablation_id_rule, ablation_strategies, ablation_weight_intervals,
    bandwidth_experiment, delay_experiment, FigureOptions,
};
use qolsr::report::Figure;
use qolsr_proto::{DuplicateStore, TopologyStore};

struct Args {
    command: String,
    opts: FigureOptions,
    metric: qolsr::eval::churn::ChurnMetric,
    live: bool,
    sizes: Option<Vec<usize>>,
    store: Option<TopologyStore>,
    dup_store: Option<DuplicateStore>,
    shards: Option<u32>,
    verify_shards: bool,
    warmup: Option<u64>,
    seconds: Option<u64>,
    max_resident_bytes: Option<u64>,
    lossy: bool,
    nodes: Option<usize>,
    levels: Option<Vec<u32>>,
    hysteresis: bool,
    etx: bool,
    capture_us: Option<u64>,
    faults: Option<Vec<qolsr::eval::faults::FaultKind>>,
    corrupt: bool,
    leave_rates: Option<Vec<f64>>,
    flows: Option<usize>,
    static_world: bool,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut command = String::from("all");
    let mut opts = FigureOptions::default();
    let mut metric = qolsr::eval::churn::ChurnMetric::default();
    let mut metric_set = false;
    let mut live = false;
    let mut sizes: Option<Vec<usize>> = None;
    let mut store: Option<TopologyStore> = None;
    let mut dup_store: Option<DuplicateStore> = None;
    let mut shards: Option<u32> = None;
    let mut verify_shards = false;
    let mut warmup: Option<u64> = None;
    let mut seconds: Option<u64> = None;
    let mut max_resident_bytes: Option<u64> = None;
    let mut lossy = false;
    let mut nodes: Option<usize> = None;
    let mut levels: Option<Vec<u32>> = None;
    let mut hysteresis = false;
    let mut etx = false;
    let mut capture_us: Option<u64> = None;
    let mut faults: Option<Vec<qolsr::eval::faults::FaultKind>> = None;
    let mut corrupt = false;
    let mut leave_rates: Option<Vec<f64>> = None;
    let mut flows: Option<usize> = None;
    let mut static_world = false;
    let mut out_dir = Some(PathBuf::from("results"));
    let mut it = std::env::args().skip(1);
    let mut command_set = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                opts.runs = v.parse().map_err(|_| format!("bad --runs value: {v}"))?;
            }
            "--metric" => {
                let v = it.next().ok_or("--metric needs a value")?;
                metric = v.parse()?;
                metric_set = true;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = parse_seed(&v).ok_or(format!("bad --seed value: {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--live" => live = true,
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a value")?;
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse()).collect();
                let parsed = parsed.map_err(|_| format!("bad --sizes value: {v}"))?;
                if parsed.is_empty() {
                    return Err("--sizes needs at least one node count".into());
                }
                sizes = Some(parsed);
            }
            "--store" => {
                let v = it.next().ok_or("--store needs a value")?;
                store = Some(match v.as_str() {
                    "shared" => TopologyStore::Shared,
                    "per-node" | "pernode" => TopologyStore::PerNode,
                    _ => return Err(format!("bad --store value: {v} (shared|per-node)")),
                });
            }
            "--dup-store" => {
                let v = it.next().ok_or("--dup-store needs a value")?;
                dup_store = Some(match v.as_str() {
                    "ring" => DuplicateStore::Ring,
                    "per-originator" | "per-orig" => DuplicateStore::PerOriginator,
                    _ => return Err(format!("bad --dup-store value: {v} (ring|per-originator)")),
                });
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let parsed: u32 = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if parsed == 0 {
                    return Err("--shards must be at least 1".into());
                }
                shards = Some(parsed);
            }
            "--verify-shards" => verify_shards = true,
            "--warmup" => {
                let v = it.next().ok_or("--warmup needs a value")?;
                warmup = Some(v.parse().map_err(|_| format!("bad --warmup value: {v}"))?);
            }
            "--seconds" => {
                let v = it.next().ok_or("--seconds needs a value")?;
                let parsed: u64 = v.parse().map_err(|_| format!("bad --seconds value: {v}"))?;
                if parsed == 0 {
                    return Err("--seconds must be at least 1".into());
                }
                seconds = Some(parsed);
            }
            "--max-resident-bytes" => {
                let v = it.next().ok_or("--max-resident-bytes needs a value")?;
                max_resident_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-resident-bytes value: {v}"))?,
                );
            }
            "--lossy" => lossy = true,
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs a value")?;
                let parsed: usize = v.parse().map_err(|_| format!("bad --nodes value: {v}"))?;
                if parsed == 0 {
                    return Err("--nodes must be at least 1".into());
                }
                nodes = Some(parsed);
            }
            "--levels" => {
                let v = it.next().ok_or("--levels needs a value")?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(|s| s.trim().parse()).collect();
                let parsed = parsed.map_err(|_| format!("bad --levels value: {v}"))?;
                if parsed.is_empty() {
                    return Err("--levels needs at least one ppm value".into());
                }
                if let Some(&bad) = parsed.iter().find(|&&p| p > 1_000_000) {
                    return Err(format!("--levels value {bad} exceeds 1000000 ppm"));
                }
                levels = Some(parsed);
            }
            "--hysteresis" => hysteresis = true,
            "--etx" => etx = true,
            "--fault" => {
                let v = it.next().ok_or("--fault needs a value")?;
                let parsed: Result<Vec<_>, _> = v.split(',').map(|s| s.trim().parse()).collect();
                let parsed = parsed?;
                if parsed.is_empty() {
                    return Err("--fault needs at least one fault kind".into());
                }
                faults = Some(parsed);
            }
            "--corrupt" => corrupt = true,
            "--leave-rate" => {
                let v = it.next().ok_or("--leave-rate needs a value")?;
                let parsed: Result<Vec<f64>, _> = v.split(',').map(|s| s.trim().parse()).collect();
                let parsed = parsed.map_err(|_| format!("bad --leave-rate value: {v}"))?;
                if parsed.is_empty() {
                    return Err("--leave-rate needs at least one rate".into());
                }
                if let Some(&bad) = parsed
                    .iter()
                    .find(|&&r| !r.is_finite() || !(0.0..=1e4).contains(&r))
                {
                    return Err(format!("--leave-rate value {bad} must be in [0, 1e4]"));
                }
                leave_rates = Some(parsed);
            }
            "--flows" => {
                let v = it.next().ok_or("--flows needs a value")?;
                let parsed: usize = v.parse().map_err(|_| format!("bad --flows value: {v}"))?;
                if parsed == 0 {
                    return Err("--flows must be at least 1".into());
                }
                flows = Some(parsed);
            }
            "--static" => static_world = true,
            "--capture-us" => {
                let v = it.next().ok_or("--capture-us needs a value")?;
                let parsed: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --capture-us value: {v}"))?;
                capture_us = Some(parsed);
            }
            "--quick" => opts.runs = 10,
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out_dir = Some(PathBuf::from(v));
            }
            "--no-csv" => out_dir = None,
            "--help" | "-h" => {
                command = "help".into();
                command_set = true;
            }
            c if !c.starts_with('-') && !command_set => {
                command = c.to_owned();
                command_set = true;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    // Only the churn experiment is metric-parameterized; silently
    // ignoring the flag elsewhere would mislabel results.
    if metric_set
        && command != "churn"
        && command != "loss"
        && command != "faults"
        && command != "traffic"
    {
        return Err(format!(
            "--metric only applies to churn, loss, faults and traffic, not {command}"
        ));
    }
    if live && command != "scale" {
        return Err(format!("--live only applies to scale, not {command}"));
    }
    if sizes.is_some() && command != "scale" && command != "overhead" {
        return Err(format!(
            "--sizes only applies to scale and overhead, not {command}"
        ));
    }
    let live_scale = command == "scale" && live;
    for (set, flag) in [
        (store.is_some(), "--store"),
        (dup_store.is_some(), "--dup-store"),
        (warmup.is_some(), "--warmup"),
        (seconds.is_some(), "--seconds"),
        (max_resident_bytes.is_some(), "--max-resident-bytes"),
    ] {
        if set && !live_scale {
            return Err(format!("{flag} only applies to scale --live"));
        }
    }
    if verify_shards && !live_scale && command != "faults" && command != "traffic" {
        return Err("--verify-shards only applies to scale --live, faults and traffic".into());
    }
    if shards.is_some()
        && !live_scale
        && command != "overhead"
        && command != "churn"
        && command != "loss"
        && command != "faults"
        && command != "traffic"
    {
        return Err(format!(
            "--shards only applies to scale --live, overhead, churn, loss, faults and \
             traffic, not {command}"
        ));
    }
    if lossy && !live_scale {
        return Err("--lossy only applies to scale --live".into());
    }
    if nodes.is_some() && command != "loss" && command != "faults" && command != "traffic" {
        return Err(format!(
            "--nodes only applies to loss, faults and traffic, not {command}"
        ));
    }
    if levels.is_some() && command != "loss" && command != "traffic" {
        return Err(format!(
            "--levels only applies to loss and traffic, not {command}"
        ));
    }
    for (set, flag) in [
        (hysteresis, "--hysteresis"),
        (etx, "--etx"),
        (capture_us.is_some(), "--capture-us"),
    ] {
        if set && command != "loss" {
            return Err(format!("{flag} only applies to loss"));
        }
    }
    for (set, flag) in [(flows.is_some(), "--flows"), (static_world, "--static")] {
        if set && command != "traffic" {
            return Err(format!("{flag} only applies to traffic"));
        }
    }
    for (set, flag) in [(faults.is_some(), "--fault"), (corrupt, "--corrupt")] {
        if set && command != "faults" {
            return Err(format!("{flag} only applies to faults"));
        }
    }
    if leave_rates.is_some() && command != "churn" {
        return Err(format!("--leave-rate only applies to churn, not {command}"));
    }
    Ok(Args {
        command,
        opts,
        metric,
        live,
        sizes,
        store,
        dup_store,
        shards,
        verify_shards,
        warmup,
        seconds,
        max_resident_bytes,
        lossy,
        nodes,
        levels,
        hysteresis,
        etx,
        capture_us,
        faults,
        corrupt,
        leave_rates,
        flows,
        static_world,
        out_dir,
    })
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn emit(fig: &Figure, slug: &str, out_dir: &Option<PathBuf>) {
    println!("{}", fig.render_text());
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path: &Path = &dir.join(format!("{slug}.csv"));
        match std::fs::write(path, fig.render_csv()) {
            Ok(()) => println!("# wrote {}\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            return ExitCode::FAILURE;
        }
    };
    let opts = args.opts;
    println!(
        "# qolsr-rs figure harness — runs={} seed={:#x} strategy={:?}\n",
        opts.runs, opts.seed, opts.strategy
    );

    match args.command.as_str() {
        "help" => {
            println!(
                "commands: fig6 fig7 fig8 fig9 all ablations robustness churn scale overhead \
                 loss faults traffic; \
                 options: --runs N --seed S --threads T --metric bandwidth|delay \
                 --live --sizes L --store shared|per-node --dup-store ring|per-originator \
                 --shards K --verify-shards --warmup N --seconds N \
                 --max-resident-bytes B --lossy --nodes N --levels L \
                 --hysteresis --etx --capture-us W --fault F --corrupt --leave-rate L \
                 --flows N --static --quick --out DIR --no-csv"
            );
        }
        "fig6" => {
            let r = bandwidth_experiment(&opts);
            emit(
                &r.ans_size_figure("Fig. 6 — advertised set size per node (bandwidth metric)"),
                "fig6_ans_size_bandwidth",
                &args.out_dir,
            );
        }
        "fig7" => {
            let r = delay_experiment(&opts);
            emit(
                &r.ans_size_figure("Fig. 7 — advertised set size per node (delay metric)"),
                "fig7_ans_size_delay",
                &args.out_dir,
            );
        }
        "fig8" => {
            let r = bandwidth_experiment(&opts);
            emit(
                &r.overhead_figure("Fig. 8 — bandwidth overhead vs centralized optimum"),
                "fig8_bandwidth_overhead",
                &args.out_dir,
            );
        }
        "fig9" => {
            let r = delay_experiment(&opts);
            emit(
                &r.overhead_figure("Fig. 9 — delay overhead vs centralized optimum"),
                "fig9_delay_overhead",
                &args.out_dir,
            );
        }
        "all" => {
            let bw = bandwidth_experiment(&opts);
            emit(
                &bw.ans_size_figure("Fig. 6 — advertised set size per node (bandwidth metric)"),
                "fig6_ans_size_bandwidth",
                &args.out_dir,
            );
            emit(
                &bw.overhead_figure("Fig. 8 — bandwidth overhead vs centralized optimum"),
                "fig8_bandwidth_overhead",
                &args.out_dir,
            );
            emit(
                &bw.delivery_figure("Fig. 8b (extra) — delivery rate (bandwidth experiment)"),
                "fig8b_delivery_bandwidth",
                &args.out_dir,
            );
            let d = delay_experiment(&opts);
            emit(
                &d.ans_size_figure("Fig. 7 — advertised set size per node (delay metric)"),
                "fig7_ans_size_delay",
                &args.out_dir,
            );
            emit(
                &d.overhead_figure("Fig. 9 — delay overhead vs centralized optimum"),
                "fig9_delay_overhead",
                &args.out_dir,
            );
        }
        "ablations" => {
            let id_rule = ablation_id_rule(&opts);
            emit(
                &id_rule.delivery_figure(
                    "Ablation — delivery rate with/without the smallest-id rule \
                     (advertised-links-only routing)",
                ),
                "ablation_id_rule_delivery",
                &args.out_dir,
            );
            emit(
                &id_rule.overhead_figure("Ablation — overhead with/without the smallest-id rule"),
                "ablation_id_rule_overhead",
                &args.out_dir,
            );
            let all = ablation_all_selectors(&opts);
            emit(
                &all.ans_size_figure("Ablation — advertised set size, all selector families"),
                "ablation_all_selectors_size",
                &args.out_dir,
            );
            emit(
                &all.overhead_figure("Ablation — bandwidth overhead, all selector families"),
                "ablation_all_selectors_overhead",
                &args.out_dir,
            );
            for (name, r) in ablation_strategies(&opts) {
                emit(
                    &r.overhead_figure(&format!("Ablation — FNBP overhead, {name} routing")),
                    &format!("ablation_strategy_{name}"),
                    &args.out_dir,
                );
            }
            for (name, bw, delay) in ablation_weight_intervals(&opts) {
                emit(
                    &bw.ans_size_figure(&format!(
                        "Ablation — advertised set size (bandwidth), {name}"
                    )),
                    &format!("ablation_{name}_size_bandwidth"),
                    &args.out_dir,
                );
                emit(
                    &delay.ans_size_figure(&format!(
                        "Ablation — advertised set size (delay), {name}"
                    )),
                    &format!("ablation_{name}_size_delay"),
                    &args.out_dir,
                );
            }
        }
        "robustness" => {
            use qolsr::eval::robustness::{delivery_figure, link_failure_study};
            use qolsr::eval::{EvalConfig, SelectorKind};
            let mut cfg = EvalConfig::paper_bandwidth(opts.runs);
            cfg.seed = opts.seed;
            let fractions = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];
            let results = link_failure_study::<qolsr_metrics::BandwidthMetric>(
                &cfg,
                15.0,
                &fractions,
                &SelectorKind::PAPER,
            );
            emit(
                &delivery_figure(
                    &results,
                    "Robustness — delivery with stale advertised sets under link failures (δ=15)",
                ),
                "robustness_link_failures",
                &args.out_dir,
            );
        }
        "churn" => {
            use qolsr::eval::churn::{
                churn_experiment_with, drift_figure, staleness_figure, validity_figure, ChurnConfig,
            };
            use qolsr::eval::SelectorKind;
            let mut cfg = ChurnConfig::new(opts.runs);
            cfg.seed = opts.seed;
            cfg.threads = opts.threads;
            if let Some(shards) = args.shards {
                cfg.shards = shards;
            }
            let metric = args.metric;
            let m = metric.name();
            if let Some(rates) = args.leave_rates.clone() {
                use qolsr::eval::churn::{
                    leave_rate_staleness_figure, leave_rate_sweep_with, leave_rate_validity_figure,
                };
                let results = leave_rate_sweep_with(metric, &cfg, &rates, &SelectorKind::PAPER);
                emit(
                    &leave_rate_validity_figure(
                        &results,
                        &format!(
                            "Churn — route validity vs departure rate \
                             (waypoint + churn + drift, δ=10, {m} metric)"
                        ),
                    ),
                    &format!("churn_leave_rate_validity_{m}"),
                    &args.out_dir,
                );
                emit(
                    &leave_rate_staleness_figure(
                        &results,
                        &format!(
                            "Churn — advertised-set staleness vs departure rate (δ=10, {m} metric)"
                        ),
                    ),
                    &format!("churn_leave_rate_staleness_{m}"),
                    &args.out_dir,
                );
                return ExitCode::SUCCESS;
            }
            let results = churn_experiment_with(metric, &cfg, &SelectorKind::PAPER);
            emit(
                &validity_figure(
                    &results,
                    &format!(
                        "Churn — route validity over time \
                         (waypoint + churn + drift, δ=10, {m} metric)"
                    ),
                ),
                &format!("churn_route_validity_{m}"),
                &args.out_dir,
            );
            emit(
                &staleness_figure(
                    &results,
                    &format!("Churn — advertised-set staleness over time (δ=10, {m} metric)"),
                ),
                &format!("churn_advertised_staleness_{m}"),
                &args.out_dir,
            );
            emit(
                &drift_figure(
                    &results,
                    &format!("Churn — selection drift vs current ground truth (δ=10, {m} metric)"),
                ),
                &format!("churn_selection_drift_{m}"),
                &args.out_dir,
            );
        }
        "overhead" => {
            use qolsr::eval::overhead::{
                deliveries_figure, overhead_sweep, validity_figure, OverheadConfig,
            };
            let mut cfg = OverheadConfig::new(opts.runs.min(5));
            cfg.seed = opts.seed;
            if let Some(sizes) = args.sizes.clone() {
                cfg.sizes = sizes;
            }
            if let Some(shards) = args.shards {
                cfg.shards = shards;
            }
            let points = overhead_sweep(&cfg);
            println!(
                "# control overhead: {} s warm-up (unmeasured) + {} s measured \
                 (one full fisheye ring rotation), {} probe pairs validated per \
                 simulated second\n",
                cfg.warmup_seconds, cfg.sim_seconds, cfg.probes
            );
            println!(
                "# {:>5}  {:>8}  {:>10}  {:>13}  {:>13}  {:>13}  {:>12}  {:>16}  {:>8}",
                "n",
                "policy",
                "ms/sim-s",
                "TC deliveries",
                "ctrl bytes",
                "bytes decoded",
                "dup-peek hits",
                "TC/ring",
                "validity"
            );
            for p in &points {
                let rings = if p.tc_ring_emissions == [0; 4] {
                    "-".to_owned()
                } else {
                    // Trim only *trailing* zero slots: a mid-table ring
                    // that never fired (e.g. shadowed by an outer ring
                    // with the same multiplier) must still show as 0.
                    let last = p
                        .tc_ring_emissions
                        .iter()
                        .rposition(|&r| r > 0)
                        .unwrap_or(0);
                    let used: Vec<String> = p.tc_ring_emissions[..=last]
                        .iter()
                        .map(u64::to_string)
                        .collect();
                    used.join("/")
                };
                println!(
                    "# {:>5}  {:>8}  {:>10.1}  {:>13.0}  {:>13.0}  {:>13.0}  {:>12.0}  {:>16}  {:>7.3}",
                    p.nodes,
                    p.policy,
                    p.wall_ms_per_sim_s.mean(),
                    p.tc_deliveries.mean(),
                    p.control_bytes.mean(),
                    p.bytes_decoded.mean(),
                    p.dup_peek_hits.mean(),
                    rings,
                    p.validity.mean(),
                );
            }
            println!();
            emit(
                &deliveries_figure(
                    &points,
                    "Control overhead — TC-flood deliveries per measured run, \
                     by scoping policy",
                ),
                "overhead_tc_deliveries",
                &args.out_dir,
            );
            emit(
                &validity_figure(
                    &points,
                    "Control overhead — route validity under scoped TC dissemination",
                ),
                "overhead_route_validity",
                &args.out_dir,
            );
        }
        "loss" => {
            use qolsr::eval::loss::{
                delivery_figure, loss_experiment_with, mpr_churn_figure, validity_figure,
                LossConfig,
            };
            use qolsr::eval::SelectorKind;
            use qolsr_proto::{EtxParams, HysteresisParams, LinkHysteresis, LinkMetric};
            use qolsr_sim::SimDuration;
            let mut cfg = LossConfig::new(opts.runs);
            cfg.seed = opts.seed;
            cfg.threads = opts.threads;
            if let Some(nodes) = args.nodes {
                cfg.nodes = nodes;
            }
            if let Some(levels) = args.levels.clone() {
                cfg.levels = levels;
            }
            if let Some(shards) = args.shards {
                cfg.shards = shards;
            }
            if args.hysteresis {
                cfg.olsr.link_hysteresis = LinkHysteresis::On(HysteresisParams::default());
            }
            if args.etx {
                cfg.olsr.link_metric = LinkMetric::Etx(EtxParams::default());
            }
            if let Some(us) = args.capture_us {
                cfg.capture_window = SimDuration::from_micros(us);
            }
            let metric = args.metric;
            let results = loss_experiment_with(metric, &cfg, &SelectorKind::PAPER);
            println!(
                "# lossy radio: n={}, quadratic falloff, {} µs capture window, \
                 hysteresis={}, etx={}; {} probe pairs sampled every {} s over \
                 {} s measured\n",
                cfg.nodes,
                cfg.capture_window.as_micros(),
                args.hysteresis,
                args.etx,
                cfg.probes,
                cfg.sample_every.as_secs_f64(),
                cfg.measure.as_secs_f64(),
            );
            println!(
                "# {:>9}  {:>32}  {:>9}  {:>9}  {:>10}",
                "edge-drop", "selector", "delivery", "validity", "MPR-churn"
            );
            for r in &results {
                for level in &r.per_level {
                    println!(
                        "# {:>8.2}%  {:>32}  {:>9.3}  {:>9.3}  {:>10.3}",
                        f64::from(level.edge_drop_ppm) / 1e4,
                        r.kind.label(),
                        level.delivery.mean(),
                        level.validity.mean(),
                        level.mpr_churn.mean(),
                    );
                }
            }
            println!();
            let m = metric.name();
            emit(
                &delivery_figure(
                    &results,
                    &format!("Loss — frame delivery ratio vs edge drop probability ({m} metric)"),
                ),
                &format!("loss_delivery_{m}"),
                &args.out_dir,
            );
            emit(
                &validity_figure(
                    &results,
                    &format!("Loss — route validity vs edge drop probability ({m} metric)"),
                ),
                &format!("loss_route_validity_{m}"),
                &args.out_dir,
            );
            emit(
                &mpr_churn_figure(
                    &results,
                    &format!("Loss — MPR-set churn vs edge drop probability ({m} metric)"),
                ),
                &format!("loss_mpr_churn_{m}"),
                &args.out_dir,
            );
        }
        "faults" => {
            use qolsr::eval::faults::{
                fault_experiment_verified_with, fault_experiment_with, fault_staleness_figure,
                fault_validity_figure, recovery_report, FaultConfig, FaultKind,
            };
            use qolsr::eval::SelectorKind;
            use qolsr_sim::{CorruptionParams, FrameCorruption};
            let metric = args.metric;
            let m = metric.name();
            let kinds = args
                .faults
                .clone()
                .unwrap_or_else(|| vec![FaultKind::Partition]);
            for fault in kinds {
                let mut cfg = FaultConfig::new(opts.runs);
                cfg.seed = opts.seed;
                cfg.threads = opts.threads;
                cfg.kind = fault;
                if let Some(n) = args.nodes {
                    cfg = cfg.with_nodes(n);
                }
                if let Some(shards) = args.shards {
                    cfg.shards = shards;
                }
                if args.corrupt {
                    cfg.corruption = FrameCorruption::On(CorruptionParams::default());
                }
                let results = if args.verify_shards {
                    // Panics (non-zero exit) on any divergence between the
                    // sharded engine and the single-queue reference.
                    fault_experiment_verified_with(metric, &cfg, &SelectorKind::PAPER)
                } else {
                    fault_experiment_with(metric, &cfg, &SelectorKind::PAPER)
                };
                if args.verify_shards {
                    println!(
                        "# shard verification ok ({}): curves and recovery aggregates \
                         identical to the single-queue reference\n",
                        fault.name()
                    );
                }
                for line in recovery_report(&cfg, &results).lines() {
                    println!("# {line}");
                }
                println!();
                let slug = fault.name().replace('-', "_");
                emit(
                    &fault_validity_figure(
                        &results,
                        &format!(
                            "Faults — route validity through a {} (fault at {:.0} s, \
                             heal at {:.0} s, {m} metric)",
                            fault.name(),
                            cfg.fault_at().as_secs_f64(),
                            cfg.heal_at().as_secs_f64(),
                        ),
                    ),
                    &format!("faults_{slug}_validity_{m}"),
                    &args.out_dir,
                );
                emit(
                    &fault_staleness_figure(
                        &results,
                        &format!(
                            "Faults — advertised staleness through a {} ({m} metric)",
                            fault.name()
                        ),
                    ),
                    &format!("faults_{slug}_staleness_{m}"),
                    &args.out_dir,
                );
            }
        }
        "traffic" => {
            use qolsr::eval::traffic::{
                drop_report, traffic_delay_figure, traffic_delivery_figure,
                traffic_experiment_verified_with, traffic_experiment_with, traffic_jitter_figure,
                traffic_p99_figure, TrafficConfig,
            };
            use qolsr::eval::SelectorKind;
            let mut cfg = TrafficConfig::new(opts.runs);
            cfg.seed = opts.seed;
            cfg.threads = opts.threads;
            if let Some(nodes) = args.nodes {
                cfg.nodes = nodes;
            }
            if let Some(levels) = args.levels.clone() {
                cfg.levels = levels;
            }
            if let Some(shards) = args.shards {
                cfg.shards = shards;
            }
            if let Some(flows) = args.flows {
                cfg.flows = flows;
            }
            if args.static_world {
                cfg.mobility = None;
            }
            let metric = args.metric;
            let m = metric.name();
            let results = if args.verify_shards {
                // Panics (non-zero exit) on any divergence between the
                // sharded engine and the single-queue reference.
                traffic_experiment_verified_with(metric, &cfg, &SelectorKind::PAPER)
            } else {
                traffic_experiment_with(metric, &cfg, &SelectorKind::PAPER)
            };
            if args.verify_shards {
                println!(
                    "# shard verification ok: QoS curves and drop-cause totals \
                     identical to the single-queue reference\n"
                );
            }
            println!(
                "# data plane: n={}, {} flows/world ({} B payload, CBR every {} ms \
                 interleaved with {}-{}-packet bursts every {} ms), mobility={}, \
                 {} s warm-up + {} s measured\n",
                cfg.nodes,
                cfg.flows,
                cfg.payload,
                cfg.cbr_interval.as_micros() / 1_000,
                cfg.burst.0,
                cfg.burst.1,
                cfg.frame_interval.as_micros() / 1_000,
                cfg.mobility.is_some(),
                cfg.warmup.as_secs_f64(),
                cfg.measure.as_secs_f64(),
            );
            println!(
                "# {:>9}  {:>32}  {:>9}  {:>10}  {:>10}  {:>10}",
                "edge-drop", "selector", "delivery", "delay(ms)", "p99(ms)", "jitter(ms)"
            );
            for r in &results {
                for level in &r.per_level {
                    println!(
                        "# {:>8.2}%  {:>32}  {:>9.3}  {:>10.2}  {:>10.2}  {:>10.2}",
                        f64::from(level.edge_drop_ppm) / 1e4,
                        r.kind.label(),
                        level.delivery.mean(),
                        level.delay_ms.mean(),
                        level.p99_delay_ms.mean(),
                        level.jitter_ms.mean(),
                    );
                }
            }
            println!();
            for line in drop_report(&results).lines() {
                println!("# {line}");
            }
            println!();
            emit(
                &traffic_delivery_figure(
                    &results,
                    &format!(
                        "Traffic — end-to-end delivery ratio vs edge drop probability \
                         ({m} metric)"
                    ),
                ),
                &format!("traffic_delivery_{m}"),
                &args.out_dir,
            );
            emit(
                &traffic_delay_figure(
                    &results,
                    &format!(
                        "Traffic — mean end-to-end delay vs edge drop probability ({m} metric)"
                    ),
                ),
                &format!("traffic_delay_{m}"),
                &args.out_dir,
            );
            emit(
                &traffic_p99_figure(
                    &results,
                    &format!(
                        "Traffic — p99 end-to-end delay vs edge drop probability ({m} metric)"
                    ),
                ),
                &format!("traffic_p99_delay_{m}"),
                &args.out_dir,
            );
            emit(
                &traffic_jitter_figure(
                    &results,
                    &format!("Traffic — mean jitter vs edge drop probability ({m} metric)"),
                ),
                &format!("traffic_jitter_{m}"),
                &args.out_dir,
            );
        }
        "scale" if args.live => {
            use qolsr::eval::scale::{live_figure, live_sweep, live_sweep_verified, LiveConfig};
            let mut cfg = LiveConfig::new(opts.runs.min(5));
            cfg.seed = opts.seed;
            if let Some(sizes) = args.sizes.clone() {
                cfg.sizes = sizes;
            }
            if let Some(store) = args.store {
                cfg.store = store;
            }
            if let Some(dup_store) = args.dup_store {
                cfg.dup_store = dup_store;
            }
            if let Some(shards) = args.shards {
                cfg.shards = shards;
            }
            if let Some(warmup) = args.warmup {
                cfg.warmup_seconds = warmup;
            }
            if let Some(seconds) = args.seconds {
                cfg.sim_seconds = seconds;
            }
            if args.lossy {
                use qolsr_sim::{LossyPhy, PhyModel, SimDuration};
                cfg.phy = PhyModel::Lossy(LossyPhy {
                    edge_drop_ppm: 400_000,
                    exponent: 2,
                    capture_window: SimDuration::from_micros(150),
                });
            }
            let points = if args.verify_shards {
                // Panics (non-zero exit) on any counter divergence between
                // the sharded engine and the single-queue reference.
                live_sweep_verified(&cfg)
            } else {
                live_sweep(&cfg)
            };
            println!(
                "# live protocol ({:?} topology store, {:?} duplicate set, {} shard(s), \
                 {} radio): {} s warm-up (unmeasured) \
                 + {} s measured, {} probe nodes sampled per simulated second\n",
                cfg.store,
                cfg.dup_store,
                cfg.shards,
                if args.lossy { "lossy" } else { "ideal" },
                cfg.warmup_seconds,
                cfg.sim_seconds,
                cfg.probes
            );
            if args.verify_shards {
                println!(
                    "# shard verification ok: counters identical to the \
                     single-queue reference at every size\n"
                );
            }
            println!(
                "# {:>5}  {:>10}  {:>12}  {:>12}  {:>12}  {:>10}  {:>10}  {:>8}  {:>12}  {:>10}  {:>9}",
                "n",
                "ms/sim-s",
                "events",
                "timers",
                "deliveries",
                "recomputes",
                "cache-hits",
                "hit-rate",
                "res-entries",
                "res-MiB",
                "rss-MiB"
            );
            const MIB: f64 = 1024.0 * 1024.0;
            for p in &points {
                let rss = if p.rss_bytes.count() == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.1}", p.rss_bytes.mean() / MIB)
                };
                println!(
                    "# {:>5}  {:>10.1}  {:>12.0}  {:>12.0}  {:>12.0}  {:>10.1}  {:>10.1}  {:>7.1}%  {:>12.0}  {:>10.2}  {:>9}",
                    p.nodes,
                    p.wall_ms_per_sim_s.mean(),
                    p.events.mean(),
                    p.timers.mean(),
                    p.deliveries.mean(),
                    p.routes_recomputed.mean(),
                    p.route_cache_hits.mean(),
                    p.totals.route_cache_hit_rate() * 100.0,
                    p.resident_entries.mean(),
                    p.resident_bytes.mean() / MIB,
                    rss,
                );
            }
            println!();
            emit(
                &live_figure(
                    &points,
                    "Scale sweep (live) — full-protocol wall-clock per simulated second",
                ),
                "scale_live",
                &args.out_dir,
            );
            if let Some(budget) = args.max_resident_bytes {
                for p in &points {
                    let mean = p.resident_bytes.mean();
                    if mean > budget as f64 {
                        eprintln!(
                            "error: n={} mean resident protocol-table bytes {:.0} exceed \
                             the --max-resident-bytes budget {budget}",
                            p.nodes, mean
                        );
                        return ExitCode::FAILURE;
                    }
                }
                println!("# resident budget ok: all sizes under {budget} bytes\n");
            }
        }
        "scale" => {
            use qolsr::eval::scale::{scale_figure, scale_sweep, ScaleConfig};
            let mut cfg = ScaleConfig::new(opts.runs.min(10));
            cfg.seed = opts.seed;
            cfg.threads = opts.threads;
            if let Some(sizes) = args.sizes.clone() {
                cfg.sizes = sizes;
            }
            let points = scale_sweep(&cfg);
            for p in &points {
                println!(
                    "# n={:5}  side={:7.1}  waypoint {:8.3} ms/simulated-second  \
                     selection {:8.3} ms/world  events/run {:9.0}",
                    p.nodes,
                    p.side,
                    p.tick_ms.mean(),
                    p.select_ms.mean(),
                    p.events.mean(),
                );
            }
            if points.len() >= 2 {
                let base = &points[0];
                for p in &points[1..] {
                    let node_ratio = p.nodes as f64 / base.nodes as f64;
                    let time_ratio = p.tick_ms.mean() / base.tick_ms.mean().max(1e-9);
                    println!(
                        "# n×{node_ratio:.1}: waypoint tick cost ×{time_ratio:.2} \
                         (quadratic would be ×{:.1})",
                        node_ratio * node_ratio
                    );
                }
            }
            println!();
            emit(
                &scale_figure(
                    &points,
                    "Scale sweep — wall-clock per simulated second vs node count",
                ),
                "scale_sweep",
                &args.out_dir,
            );
        }
        other => {
            eprintln!("error: unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
