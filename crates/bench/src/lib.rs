//! Shared workload builders for the `qolsr-bench` benchmarks and the
//! figure-regeneration binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qolsr_graph::deploy::{deploy, Deployment, UniformWeights};
use qolsr_graph::{LocalView, NodeId, Topology};
use qolsr_sim::SimRng;

/// Deploys a paper-style topology (`1000×1000`, `R = 100`) at the given
/// density with a fixed seed.
pub fn paper_topology(density: f64, seed: u64) -> Topology {
    let mut rng = SimRng::seed_from_u64(seed);
    deploy(
        &Deployment::paper_defaults(density),
        &UniformWeights::paper_defaults(),
        &mut rng,
    )
}

/// Picks the node with the largest 2-hop neighborhood — a representative
/// "busy" node for selector micro-benchmarks.
pub fn busiest_view(topo: &Topology) -> LocalView {
    let mut best: Option<(usize, LocalView)> = None;
    for u in topo.nodes() {
        let view = LocalView::extract(topo, u);
        let size = view.len();
        if best.as_ref().is_none_or(|(s, _)| size > *s) {
            best = Some((size, view));
        }
    }
    best.expect("non-empty topology").1
}

/// A deterministic connected source/destination pair for routing
/// benchmarks (first pair found in the largest component, maximizing hop
/// spread via node-id distance).
pub fn sample_route_pair(topo: &Topology) -> Option<(NodeId, NodeId)> {
    let components = qolsr_graph::connectivity::Components::compute(topo);
    let largest = components.largest()?;
    let members = components.members(largest);
    if members.len() < 2 {
        return None;
    }
    Some((members[0], *members.last().expect("len >= 2")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_usable_workloads() {
        let topo = paper_topology(8.0, 1);
        assert!(topo.len() > 50);
        let view = busiest_view(&topo);
        assert!(view.one_hop().count() >= 1);
        let (s, t) = sample_route_pair(&topo).unwrap();
        assert_ne!(s, t);
    }
}
