//! Property-based tests for the metric laws documented on
//! [`qolsr_metrics::Metric`].

use proptest::prelude::*;
use qolsr_metrics::{
    path_value, Bandwidth, BandwidthMetric, Delay, DelayMetric, Lex2, Metric, ResidualEnergyMetric,
};

proptest! {
    #[test]
    fn bandwidth_path_value_is_min(links in proptest::collection::vec(1u64..1_000, 1..16)) {
        let v = path_value::<BandwidthMetric>(links.iter().copied().map(Bandwidth));
        prop_assert_eq!(v, Bandwidth(*links.iter().min().unwrap()));
    }

    #[test]
    fn delay_path_value_is_sum(links in proptest::collection::vec(1u64..1_000, 1..16)) {
        let v = path_value::<DelayMetric>(links.iter().copied().map(Delay));
        prop_assert_eq!(v, Delay(links.iter().sum()));
    }

    #[test]
    fn bandwidth_fold_order_invariant(mut links in proptest::collection::vec(1u64..1_000, 1..16)) {
        let forward = path_value::<BandwidthMetric>(links.iter().copied().map(Bandwidth));
        links.reverse();
        let backward = path_value::<BandwidthMetric>(links.iter().copied().map(Bandwidth));
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn extending_never_improves_bandwidth(path in 0u64..10_000, link in 0u64..10_000) {
        let ext = BandwidthMetric::extend(Bandwidth(path), Bandwidth(link));
        prop_assert!(!BandwidthMetric::better(ext, Bandwidth(path)));
    }

    #[test]
    fn extending_never_improves_delay(path in 0u64..10_000, link in 0u64..10_000) {
        let ext = DelayMetric::extend(Delay(path), Delay(link));
        prop_assert!(!DelayMetric::better(ext, Delay(path)));
    }

    #[test]
    fn better_is_asymmetric(a in 0u64..10_000, b in 0u64..10_000) {
        prop_assert!(!(BandwidthMetric::better(Bandwidth(a), Bandwidth(b))
            && BandwidthMetric::better(Bandwidth(b), Bandwidth(a))));
        prop_assert!(!(DelayMetric::better(Delay(a), Delay(b))
            && DelayMetric::better(Delay(b), Delay(a))));
    }

    #[test]
    fn better_is_transitive(a in 0u64..100, b in 0u64..100, c in 0u64..100) {
        if BandwidthMetric::better(Bandwidth(a), Bandwidth(b))
            && BandwidthMetric::better(Bandwidth(b), Bandwidth(c))
        {
            prop_assert!(BandwidthMetric::better(Bandwidth(a), Bandwidth(c)));
        }
    }

    #[test]
    fn lex2_better_is_strict_weak_order(
        a in (0u64..50, 0u64..50),
        b in (0u64..50, 0u64..50),
    ) {
        type M = Lex2<BandwidthMetric, DelayMetric>;
        let a = (Bandwidth(a.0), Delay(a.1));
        let b = (Bandwidth(b.0), Delay(b.1));
        // Asymmetry.
        prop_assert!(!(M::better(a, b) && M::better(b, a)));
        // Totality up to equivalence.
        if a != b {
            prop_assert!(M::better(a, b) || M::better(b, a) || (a.0 == b.0 && a.1 == b.1));
        }
    }

    #[test]
    fn best_by_preference_agrees_with_naive_scan(
        items in proptest::collection::vec((1u64..100, 0u32..64), 1..20),
    ) {
        let got = qolsr_metrics::best_by_preference::<BandwidthMetric, u32>(
            items.iter().map(|&(v, i)| (Bandwidth(v), i)),
        );
        // Naive: maximum value, then minimum id among maxima.
        let max = items.iter().map(|&(v, _)| v).max().unwrap();
        let id = items
            .iter()
            .filter(|&&(v, _)| v == max)
            .map(|&(_, i)| i)
            .min()
            .unwrap();
        prop_assert_eq!(got, Some((Bandwidth(max), id)));
    }

    #[test]
    fn energy_metric_is_concave(links in proptest::collection::vec(1u64..1_000, 1..16)) {
        let v = path_value::<ResidualEnergyMetric>(
            links.iter().copied().map(qolsr_metrics::Energy),
        );
        prop_assert_eq!(v.value(), *links.iter().min().unwrap());
    }
}
