//! Scalar QoS value newtypes.
//!
//! All values are unsigned integers in abstract units: the paper draws link
//! weights "uniformly at random in a fixed interval" without naming units,
//! and all reported quantities (set sizes, overhead ratios) are scale-free.
//! Integer values give total ordering, hashing and exact arithmetic, which
//! the deterministic algorithms and tests rely on.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! qos_value {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Zero value.
            pub const ZERO: Self = Self(0);
            /// Maximum representable value.
            pub const MAX: Self = Self(u64::MAX);

            /// Returns the raw integer value.
            ///
            /// # Examples
            ///
            /// ```
            /// # use qolsr_metrics::*;
            #[doc = concat!("assert_eq!(", stringify!($name), "(7).value(), 7);")]
            /// ```
            pub const fn value(self) -> u64 {
                self.0
            }

            /// Saturating addition; saturates at [`Self::MAX`].
            pub const fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Minimum of two values.
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }

            /// Maximum of two values.
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0 == u64::MAX {
                    write!(f, "∞")
                } else {
                    write!(f, "{}", self.0)
                }
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

qos_value! {
    /// Link or path bandwidth in abstract units (a **concave** quantity: the
    /// bandwidth of a path is the minimum over its links).
    Bandwidth
}

qos_value! {
    /// Link or path delay in abstract units (an **additive** quantity: the
    /// delay of a path is the sum over its links).
    Delay
}

qos_value! {
    /// Residual energy in abstract units, modelling the paper's future-work
    /// direction of energy-aware selection (a **concave** quantity: the
    /// residual energy of a path is the minimum over its links).
    Energy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        assert_eq!(Bandwidth::from(9).value(), 9);
        assert_eq!(u64::from(Delay(3)), 3);
        assert_eq!(Energy(5).value(), 5);
    }

    #[test]
    fn saturating_add_saturates() {
        assert_eq!(Delay::MAX.saturating_add(Delay(1)), Delay::MAX);
        assert_eq!(Delay(2).saturating_add(Delay(3)), Delay(5));
    }

    #[test]
    fn min_max() {
        assert_eq!(Bandwidth(3).min(Bandwidth(8)), Bandwidth(3));
        assert_eq!(Bandwidth(3).max(Bandwidth(8)), Bandwidth(8));
    }

    #[test]
    fn display_finite_and_infinite() {
        assert_eq!(Bandwidth(42).to_string(), "42");
        assert_eq!(Delay::MAX.to_string(), "∞");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Bandwidth(2) < Bandwidth(10));
        assert!(Delay(2) < Delay(10));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bandwidth::default(), Bandwidth::ZERO);
        assert_eq!(Delay::default(), Delay::ZERO);
        assert_eq!(Energy::default(), Energy::ZERO);
    }
}
