//! QoS metric framework for the `qolsr-rs` reproduction of
//! *"Towards an efficient QoS based selection of neighbors in QOLSR"*
//! (Khadar, Mitton, Simplot-Ryl — SN/ICDCS 2010).
//!
//! The paper parameterizes every algorithm by a QoS metric that is either
//! **additive** (the value of a path is the *sum* of its link values, e.g.
//! delay, jitter, packet loss in log-space) or **concave** (the value of a
//! path is the *minimum* of its link values, e.g. bandwidth, free buffers,
//! residual energy). This crate captures that abstraction as the [`Metric`]
//! trait together with the concrete value types used throughout the
//! workspace.
//!
//! # Examples
//!
//! Computing the QoS value of a path under both metric families:
//!
//! ```
//! use qolsr_metrics::{Bandwidth, BandwidthMetric, Delay, DelayMetric, Metric, path_value};
//!
//! // A three-link path with per-link bandwidths 10, 4, 7: bottleneck is 4.
//! let bw = path_value::<BandwidthMetric>([10, 4, 7].map(Bandwidth));
//! assert_eq!(bw, Bandwidth(4));
//!
//! // The same path with per-link delays 1, 2, 3: total is 6.
//! let d = path_value::<DelayMetric>([1, 2, 3].map(Delay));
//! assert_eq!(d, Delay(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod composite;
mod link;
mod metric;
mod pref;
mod value;

pub use composite::Lex2;
pub use link::LinkQos;
pub use metric::{
    path_value, BandwidthMetric, DelayMetric, Metric, MetricKind, ResidualEnergyMetric,
};
pub use pref::{best_by_preference, compare_preference, Preference};
pub use value::{Bandwidth, Delay, Energy};
