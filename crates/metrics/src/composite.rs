//! Lexicographic metric composition — the paper's future-work direction
//! ("multi-criterion metrics, for example minimizing energy-consumption
//! while providing good bandwidth").

use std::marker::PhantomData;

use crate::link::LinkQos;
use crate::metric::{Metric, MetricKind};

/// Lexicographic composition of two metrics: `A` is the primary criterion,
/// `B` breaks ties.
///
/// A path is better under `Lex2<A, B>` iff it is strictly better under `A`,
/// or equal under `A` and strictly better under `B`. Both components extend
/// independently, so the composite is again a well-formed [`Metric`].
///
/// Note the usual caveat of multi-criteria routing: lexicographic optima are
/// optimal in `A` but only conditionally optimal in `B`. This matches the
/// paper's informal future-work framing rather than full Pareto routing.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{
///     Bandwidth, Energy, Lex2, LinkQos, Metric, ResidualEnergyMetric, BandwidthMetric,
/// };
///
/// type EnergyThenBandwidth = Lex2<ResidualEnergyMetric, BandwidthMetric>;
///
/// let a = (Energy(5), Bandwidth(2));
/// let b = (Energy(5), Bandwidth(9));
/// // Equal energy: the wider path wins.
/// assert!(EnergyThenBandwidth::better(b, a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lex2<A, B>(PhantomData<(A, B)>);

impl<A, B> Default for Lex2<A, B> {
    fn default() -> Self {
        Self(PhantomData)
    }
}

impl<A: Metric, B: Metric> Metric for Lex2<A, B> {
    type Value = (A::Value, B::Value);

    const NAME: &'static str = "lexicographic";

    fn kind() -> MetricKind {
        MetricKind::Composite
    }

    fn empty_path() -> Self::Value {
        (A::empty_path(), B::empty_path())
    }

    fn no_path() -> Self::Value {
        (A::no_path(), B::no_path())
    }

    fn extend(path: Self::Value, link: Self::Value) -> Self::Value {
        (A::extend(path.0, link.0), B::extend(path.1, link.1))
    }

    fn better(a: Self::Value, b: Self::Value) -> bool {
        if A::better(a.0, b.0) {
            true
        } else if A::better(b.0, a.0) {
            false
        } else {
            B::better(a.1, b.1)
        }
    }

    fn link_value(qos: &LinkQos) -> Self::Value {
        (A::link_value(qos), B::link_value(qos))
    }

    fn is_reachable(v: Self::Value) -> bool {
        A::is_reachable(v.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{path_value, BandwidthMetric, DelayMetric, ResidualEnergyMetric};
    use crate::value::{Bandwidth, Delay, Energy};

    type EnergyThenBw = Lex2<ResidualEnergyMetric, BandwidthMetric>;
    type BwThenDelay = Lex2<BandwidthMetric, DelayMetric>;

    #[test]
    fn primary_dominates() {
        let a = (Energy(9), Bandwidth(1));
        let b = (Energy(3), Bandwidth(100));
        assert!(EnergyThenBw::better(a, b));
    }

    #[test]
    fn secondary_breaks_ties() {
        let a = (Bandwidth(4), Delay(10));
        let b = (Bandwidth(4), Delay(3));
        assert!(BwThenDelay::better(b, a));
        assert!(!BwThenDelay::better(a, b));
    }

    #[test]
    fn extend_is_componentwise() {
        let p = path_value::<BwThenDelay>([(Bandwidth(10), Delay(1)), (Bandwidth(4), Delay(2))]);
        assert_eq!(p, (Bandwidth(4), Delay(3)));
    }

    #[test]
    fn empty_and_no_path() {
        assert_eq!(BwThenDelay::empty_path(), (Bandwidth::MAX, Delay::ZERO));
        assert!(!BwThenDelay::is_reachable(BwThenDelay::no_path()));
        assert!(BwThenDelay::is_reachable((Bandwidth(1), Delay(5))));
    }

    #[test]
    fn link_value_extracts_both() {
        let qos = LinkQos::with_energy(Bandwidth(3), Delay(4), Energy(5));
        assert_eq!(BwThenDelay::link_value(&qos), (Bandwidth(3), Delay(4)));
        assert_eq!(EnergyThenBw::link_value(&qos), (Energy(5), Bandwidth(3)));
    }

    #[test]
    fn kind_is_composite() {
        assert_eq!(BwThenDelay::kind(), MetricKind::Composite);
    }
}
