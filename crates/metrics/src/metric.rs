//! The [`Metric`] abstraction: additive and concave path metrics.

use std::fmt::Debug;
use std::hash::Hash;

use crate::link::LinkQos;
use crate::value::{Bandwidth, Delay, Energy};

/// Classification of a path metric, following §III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Path value is the sum of link values (delay, jitter, loss).
    Additive,
    /// Path value is the minimum of link values (bandwidth, buffers, energy).
    Concave,
    /// Lexicographic combination of two metrics (the paper's future-work
    /// multi-criterion direction).
    Composite,
}

/// A QoS path metric.
///
/// A metric defines how link values [`extend`](Metric::extend) into path
/// values and which of two path values is [`better`](Metric::better). The
/// paper's algorithms (Algorithms 1 and 2) are *identical* up to this
/// abstraction — bandwidth maximizes a concave quantity, delay minimizes an
/// additive one — so all of `qolsr-graph`'s path algorithms and `qolsr`'s
/// selectors are generic over `M: Metric`.
///
/// Implementations must satisfy, for all values `a`, `b`, `l`:
///
/// * `extend(empty_path(), l) == l` for any single link `l`;
/// * `extend(no_path(), l)` is never better than `no_path()` (absorption);
/// * extending a path never improves it:
///   `!better(extend(a, l), a)` — delay grows, bandwidth shrinks;
/// * `better` is a strict weak order.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{Bandwidth, BandwidthMetric, Metric};
///
/// let a = Bandwidth(10);
/// let b = Bandwidth(3);
/// assert!(BandwidthMetric::better(a, b)); // more bandwidth is better
/// assert_eq!(BandwidthMetric::extend(a, b), Bandwidth(3)); // bottleneck
/// ```
pub trait Metric: Copy + Debug + Default + Send + Sync + 'static {
    /// The path-value type.
    type Value: Copy + Eq + Hash + Debug + Send + Sync;

    /// Human-readable metric name (used in reports and figures).
    const NAME: &'static str;

    /// Whether the metric is additive, concave or composite.
    fn kind() -> MetricKind;

    /// Value of the empty path (identity of [`extend`](Metric::extend)).
    fn empty_path() -> Self::Value;

    /// Value representing the absence of any path; worse than every real
    /// path value and absorbing under [`extend`](Metric::extend).
    fn no_path() -> Self::Value;

    /// Extends a path value with one more link.
    fn extend(path: Self::Value, link: Self::Value) -> Self::Value;

    /// Returns `true` when `a` is *strictly* better than `b`.
    fn better(a: Self::Value, b: Self::Value) -> bool;

    /// Extracts this metric's link value from a QoS link label.
    fn link_value(qos: &LinkQos) -> Self::Value;

    /// Returns `true` when `a` is better than or equal to `b`.
    fn better_or_equal(a: Self::Value, b: Self::Value) -> bool {
        !Self::better(b, a)
    }

    /// Returns the better of two values (first argument wins ties).
    fn best(a: Self::Value, b: Self::Value) -> Self::Value {
        if Self::better(b, a) {
            b
        } else {
            a
        }
    }

    /// Returns `true` if `v` denotes a usable (reachable) path value.
    fn is_reachable(v: Self::Value) -> bool {
        Self::better(v, Self::no_path())
    }
}

/// Folds link values into a path value under metric `M`.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{path_value, Delay, DelayMetric};
///
/// let d = path_value::<DelayMetric>([1, 2, 3].map(Delay));
/// assert_eq!(d, Delay(6));
/// ```
pub fn path_value<M: Metric>(links: impl IntoIterator<Item = M::Value>) -> M::Value {
    links
        .into_iter()
        .fold(M::empty_path(), |acc, l| M::extend(acc, l))
}

/// The paper's concave example metric: **bandwidth**.
///
/// `BW(p) = min_i BW(x_i, x_{i+1})`; larger is better.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BandwidthMetric;

impl Metric for BandwidthMetric {
    type Value = Bandwidth;

    const NAME: &'static str = "bandwidth";

    fn kind() -> MetricKind {
        MetricKind::Concave
    }

    fn empty_path() -> Bandwidth {
        Bandwidth::MAX
    }

    fn no_path() -> Bandwidth {
        Bandwidth::ZERO
    }

    fn extend(path: Bandwidth, link: Bandwidth) -> Bandwidth {
        path.min(link)
    }

    fn better(a: Bandwidth, b: Bandwidth) -> bool {
        a > b
    }

    fn link_value(qos: &LinkQos) -> Bandwidth {
        qos.bandwidth
    }
}

/// The paper's additive example metric: **delay**.
///
/// `D(p) = Σ_i D(x_i, x_{i+1})`; smaller is better.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayMetric;

impl Metric for DelayMetric {
    type Value = Delay;

    const NAME: &'static str = "delay";

    fn kind() -> MetricKind {
        MetricKind::Additive
    }

    fn empty_path() -> Delay {
        Delay::ZERO
    }

    fn no_path() -> Delay {
        Delay::MAX
    }

    fn extend(path: Delay, link: Delay) -> Delay {
        path.saturating_add(link)
    }

    fn better(a: Delay, b: Delay) -> bool {
        a < b
    }

    fn link_value(qos: &LinkQos) -> Delay {
        qos.delay
    }
}

/// Residual-energy metric (concave): the energy of a path is the minimum
/// residual energy along it; larger is better. Implements the paper's
/// future-work direction ("minimizing energy-consumption while providing
/// good bandwidth") together with [`Lex2`](crate::Lex2).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResidualEnergyMetric;

impl Metric for ResidualEnergyMetric {
    type Value = Energy;

    const NAME: &'static str = "residual-energy";

    fn kind() -> MetricKind {
        MetricKind::Concave
    }

    fn empty_path() -> Energy {
        Energy::MAX
    }

    fn no_path() -> Energy {
        Energy::ZERO
    }

    fn extend(path: Energy, link: Energy) -> Energy {
        path.min(link)
    }

    fn better(a: Energy, b: Energy) -> bool {
        a > b
    }

    fn link_value(qos: &LinkQos) -> Energy {
        qos.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_bottleneck() {
        let v = path_value::<BandwidthMetric>([Bandwidth(10), Bandwidth(4), Bandwidth(7)]);
        assert_eq!(v, Bandwidth(4));
    }

    #[test]
    fn delay_is_sum() {
        let v = path_value::<DelayMetric>([Delay(1), Delay(2), Delay(3)]);
        assert_eq!(v, Delay(6));
    }

    #[test]
    fn empty_path_is_identity() {
        assert_eq!(
            BandwidthMetric::extend(BandwidthMetric::empty_path(), Bandwidth(5)),
            Bandwidth(5)
        );
        assert_eq!(
            DelayMetric::extend(DelayMetric::empty_path(), Delay(5)),
            Delay(5)
        );
        assert_eq!(
            ResidualEnergyMetric::extend(ResidualEnergyMetric::empty_path(), Energy(5)),
            Energy(5)
        );
    }

    #[test]
    fn no_path_is_absorbing_and_worst() {
        let l = Bandwidth(9);
        let ext = BandwidthMetric::extend(BandwidthMetric::no_path(), l);
        assert!(!BandwidthMetric::better(ext, BandwidthMetric::no_path()));
        assert!(BandwidthMetric::better(l, BandwidthMetric::no_path()));

        let l = Delay(9);
        let ext = DelayMetric::extend(DelayMetric::no_path(), l);
        assert!(!DelayMetric::better(ext, DelayMetric::no_path()));
        assert!(DelayMetric::better(l, DelayMetric::no_path()));
    }

    #[test]
    fn extending_never_improves() {
        assert!(!BandwidthMetric::better(
            BandwidthMetric::extend(Bandwidth(5), Bandwidth(2)),
            Bandwidth(5)
        ));
        assert!(!DelayMetric::better(
            DelayMetric::extend(Delay(5), Delay(2)),
            Delay(5)
        ));
    }

    #[test]
    fn better_direction() {
        assert!(BandwidthMetric::better(Bandwidth(10), Bandwidth(6)));
        assert!(DelayMetric::better(Delay(1), Delay(2)));
        assert!(ResidualEnergyMetric::better(Energy(8), Energy(2)));
    }

    #[test]
    fn best_prefers_first_on_tie() {
        assert_eq!(
            BandwidthMetric::best(Bandwidth(5), Bandwidth(5)),
            Bandwidth(5)
        );
        assert_eq!(
            BandwidthMetric::best(Bandwidth(2), Bandwidth(7)),
            Bandwidth(7)
        );
    }

    #[test]
    fn is_reachable() {
        assert!(BandwidthMetric::is_reachable(Bandwidth(1)));
        assert!(!BandwidthMetric::is_reachable(Bandwidth::ZERO));
        assert!(DelayMetric::is_reachable(Delay(100)));
        assert!(!DelayMetric::is_reachable(Delay::MAX));
    }

    #[test]
    fn kinds() {
        assert_eq!(BandwidthMetric::kind(), MetricKind::Concave);
        assert_eq!(DelayMetric::kind(), MetricKind::Additive);
        assert_eq!(ResidualEnergyMetric::kind(), MetricKind::Concave);
    }

    #[test]
    fn link_value_extraction() {
        let qos = LinkQos::with_energy(Bandwidth(3), Delay(4), Energy(5));
        assert_eq!(BandwidthMetric::link_value(&qos), Bandwidth(3));
        assert_eq!(DelayMetric::link_value(&qos), Delay(4));
        assert_eq!(ResidualEnergyMetric::link_value(&qos), Energy(5));
    }
}
