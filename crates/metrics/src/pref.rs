//! The paper's total preference order `≺u` (§III.A).
//!
//! For a node `u` and two of its neighbors `v`, `w`, the paper defines
//! `w ≺u v` iff the direct link `(u,w)` has strictly better QoS than
//! `(u,v)`, or both links tie and `w` has the **larger** identifier — which
//! makes "smaller identifier" win when taking the associated maximum
//! (`max≺BW`) or minimum (`min≺D`). Both extrema coincide once phrased as
//! "best link value, ties broken by smallest id", which is what
//! [`best_by_preference`] computes for any [`Metric`].

use std::cmp::Ordering;

use crate::metric::Metric;

/// A `(link value, node id)` pair ordered by the paper's `≺u` operator.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{Bandwidth, BandwidthMetric, Preference};
///
/// let a = Preference::<BandwidthMetric, u32>::new(Bandwidth(10), 4);
/// let b = Preference::<BandwidthMetric, u32>::new(Bandwidth(10), 2);
/// // Same bandwidth: the smaller id (2) is preferred.
/// assert!(b.is_preferred_over(&a));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Preference<M: Metric, I> {
    value: M::Value,
    id: I,
}

impl<M: Metric, I: Ord + Copy> Preference<M, I> {
    /// Creates a preference key from a direct-link value and a node id.
    pub fn new(value: M::Value, id: I) -> Self {
        Self { value, id }
    }

    /// The link value of this key.
    pub fn value(&self) -> M::Value {
        self.value
    }

    /// The node id of this key.
    pub fn id(&self) -> I {
        self.id
    }

    /// Returns `true` if `self` is strictly preferred over `other`
    /// (better link value, or equal value and smaller id).
    pub fn is_preferred_over(&self, other: &Self) -> bool {
        compare_preference::<M, I>((self.value, self.id), (other.value, other.id)) == Ordering::Less
    }
}

/// Compares two `(link value, id)` pairs under `≺u`: [`Ordering::Less`]
/// means the first is preferred.
pub fn compare_preference<M: Metric, I: Ord>(a: (M::Value, I), b: (M::Value, I)) -> Ordering {
    if M::better(a.0, b.0) {
        Ordering::Less
    } else if M::better(b.0, a.0) {
        Ordering::Greater
    } else {
        a.1.cmp(&b.1)
    }
}

/// Selects the most-preferred element of an iterator of `(value, id)`
/// pairs — the paper's `max≺BW` / `min≺D` — returning `None` on an empty
/// iterator.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{best_by_preference, Bandwidth, BandwidthMetric};
///
/// let picked = best_by_preference::<BandwidthMetric, u32>(
///     [(Bandwidth(4), 1), (Bandwidth(9), 7), (Bandwidth(9), 3)],
/// );
/// // Highest bandwidth wins; the id tie-break picks 3 over 7.
/// assert_eq!(picked, Some((Bandwidth(9), 3)));
/// ```
pub fn best_by_preference<M: Metric, I: Ord + Copy>(
    items: impl IntoIterator<Item = (M::Value, I)>,
) -> Option<(M::Value, I)> {
    items.into_iter().fold(None, |acc, item| match acc {
        None => Some(item),
        Some(cur) => {
            if compare_preference::<M, I>((item.0, item.1), (cur.0, cur.1)) == Ordering::Less {
                Some(item)
            } else {
                Some(cur)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BandwidthMetric, DelayMetric};
    use crate::value::{Bandwidth, Delay};

    #[test]
    fn bandwidth_prefers_wider_link() {
        let got =
            best_by_preference::<BandwidthMetric, u32>([(Bandwidth(5), 1), (Bandwidth(10), 9)]);
        assert_eq!(got, Some((Bandwidth(10), 9)));
    }

    #[test]
    fn delay_prefers_faster_link() {
        let got = best_by_preference::<DelayMetric, u32>([(Delay(5), 1), (Delay(2), 9)]);
        assert_eq!(got, Some((Delay(2), 9)));
    }

    #[test]
    fn tie_breaks_by_smaller_id() {
        let got = best_by_preference::<BandwidthMetric, u32>([
            (Bandwidth(7), 4),
            (Bandwidth(7), 2),
            (Bandwidth(7), 6),
        ]);
        assert_eq!(got, Some((Bandwidth(7), 2)));
    }

    #[test]
    fn empty_iterator_yields_none() {
        let got = best_by_preference::<BandwidthMetric, u32>(std::iter::empty());
        assert_eq!(got, None);
    }

    #[test]
    fn paper_fig2_example() {
        // On Fig. 2 the paper states v5 ≺u v1 is *false*: BW(u,v5)=1 is less
        // than BW(u,v1)=5, so v1 is preferred; and v1 ≺u v2 because both
        // links have bandwidth 5 and v1 has the smaller id.
        let v1 = Preference::<BandwidthMetric, u32>::new(Bandwidth(5), 1);
        let v2 = Preference::<BandwidthMetric, u32>::new(Bandwidth(5), 2);
        let v5 = Preference::<BandwidthMetric, u32>::new(Bandwidth(1), 5);
        assert!(v1.is_preferred_over(&v5));
        assert!(v1.is_preferred_over(&v2));
        assert!(v2.is_preferred_over(&v5));
    }

    #[test]
    fn preference_accessors() {
        let p = Preference::<BandwidthMetric, u32>::new(Bandwidth(3), 11);
        assert_eq!(p.value(), Bandwidth(3));
        assert_eq!(p.id(), 11);
    }

    #[test]
    fn compare_is_total_on_distinct_ids() {
        let a = (Bandwidth(4), 1u32);
        let b = (Bandwidth(4), 2u32);
        assert_eq!(
            compare_preference::<BandwidthMetric, u32>(a, b),
            Ordering::Less
        );
        assert_eq!(
            compare_preference::<BandwidthMetric, u32>(b, a),
            Ordering::Greater
        );
    }
}
