//! The QoS label attached to every link of a wireless topology.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::{Bandwidth, Delay, Energy};

/// QoS annotation of a (bidirectional) wireless link.
///
/// The paper treats the *computation* of these quantities as out of scope
/// (citing Munaretto & Fonseca for measurement techniques); simulations draw
/// them uniformly at random. One record carries all supported metrics so a
/// single topology can be evaluated under any [`Metric`](crate::Metric)
/// without re-sampling.
///
/// # Examples
///
/// ```
/// use qolsr_metrics::{Bandwidth, Delay, LinkQos};
///
/// let qos = LinkQos::new(Bandwidth(10), Delay(3));
/// assert_eq!(qos.bandwidth, Bandwidth(10));
/// assert_eq!(qos.delay, Delay(3));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkQos {
    /// Available bandwidth on the link.
    pub bandwidth: Bandwidth,
    /// Transmission delay of the link.
    pub delay: Delay,
    /// Residual energy associated with the link (minimum of the two
    /// endpoints' batteries in the energy-aware extension).
    pub energy: Energy,
}

impl LinkQos {
    /// Creates a link label from bandwidth and delay, with maximal energy.
    pub fn new(bandwidth: Bandwidth, delay: Delay) -> Self {
        Self {
            bandwidth,
            delay,
            energy: Energy::MAX,
        }
    }

    /// Creates a link label carrying all three supported metrics.
    pub fn with_energy(bandwidth: Bandwidth, delay: Delay, energy: Energy) -> Self {
        Self {
            bandwidth,
            delay,
            energy,
        }
    }

    /// Convenience constructor used by fixtures: a link whose bandwidth is
    /// `w` and whose delay is also `w` (the paper's worked figures label
    /// each link with a single weight interpreted under the active metric).
    pub fn uniform(w: u64) -> Self {
        Self {
            bandwidth: Bandwidth(w),
            delay: Delay(w),
            energy: Energy(w),
        }
    }
}

impl fmt::Display for LinkQos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bw={} delay={} energy={}",
            self.bandwidth, self.delay, self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_defaults_energy_to_max() {
        let qos = LinkQos::new(Bandwidth(5), Delay(2));
        assert_eq!(qos.energy, Energy::MAX);
    }

    #[test]
    fn uniform_sets_all_fields() {
        let qos = LinkQos::uniform(4);
        assert_eq!(qos.bandwidth, Bandwidth(4));
        assert_eq!(qos.delay, Delay(4));
        assert_eq!(qos.energy, Energy(4));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LinkQos::uniform(1).to_string().is_empty());
    }
}
