//! Property tests for the data-plane traffic primitives: the bounded
//! transmit queue against a FIFO oracle, the TTL/hop lifecycle of
//! [`DataPacket`], and the arrival conservation of [`FlowState`] — the
//! generator-level half of the packet-conservation ledger the eval
//! harness checks end to end.

use std::collections::VecDeque;

use proptest::prelude::*;
use qolsr_graph::NodeId;
use qolsr_sim::{
    DataPacket, FlowModel, FlowSpec, FlowState, SimDuration, SimRng, SimTime, TxQueue,
};

// ---------------------------------------------------------------------
// TxQueue vs the FIFO oracle
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..1_000_000).prop_map(Op::Push),
        (0u32..1_000_000).prop_map(Op::Push),
        Just(Op::Pop),
    ]
}

proptest! {
    /// After any interleaving of pushes and pops, the bounded queue
    /// behaves exactly like a capacity-checked `VecDeque`: same accept /
    /// reject decisions (rejects hand the value back), same pop order,
    /// same length — and occupancy never exceeds the configured
    /// capacity.
    #[test]
    fn tx_queue_matches_fifo_oracle(
        cap in 1usize..32,
        ops in proptest::collection::vec(op(), 1..400),
    ) {
        let mut q: TxQueue<u32> = TxQueue::new(cap);
        let mut oracle: VecDeque<u32> = VecDeque::new();
        prop_assert_eq!(q.capacity(), cap);
        for op in ops {
            match op {
                Op::Push(v) => {
                    if oracle.len() < cap {
                        prop_assert_eq!(q.push(v), Ok(()), "accept below capacity");
                        oracle.push_back(v);
                    } else {
                        prop_assert_eq!(q.push(v), Err(v), "tail-drop at capacity");
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), oracle.pop_front(), "FIFO order");
                }
            }
            prop_assert_eq!(q.len(), oracle.len());
            prop_assert_eq!(q.is_empty(), oracle.is_empty());
            prop_assert!(q.len() <= q.capacity(), "occupancy bound");
        }
        // A wipe reports exactly the packets it sheds, then the queue is
        // genuinely empty.
        let before = q.len();
        prop_assert_eq!(q.clear(), before);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pop(), None);
    }

    /// A zero capacity clamps to one: the queue can always hold at least
    /// the packet being serviced.
    #[test]
    fn capacity_clamps_to_at_least_one(cap in 0usize..4) {
        let q: TxQueue<u32> = TxQueue::new(cap);
        prop_assert_eq!(q.capacity(), cap.max(1));
    }
}

// ---------------------------------------------------------------------
// DataPacket TTL / hop lifecycle
// ---------------------------------------------------------------------

proptest! {
    /// Repeatedly relaying a packet performs exactly `ttl − 1` hops
    /// before the TTL gate closes: each hop decrements the TTL by one
    /// and increments the hop count (saturating), `ttl + hop_count` is
    /// conserved along the chain (absent saturation), and no packet ever
    /// travels more hops than its initial TTL allows.
    #[test]
    fn hop_count_is_bounded_by_ttl(ttl in 0u8..=255, hop0 in 0u8..=8) {
        let mut p = DataPacket {
            src: NodeId(0),
            dst: NodeId(1),
            flow: 0,
            seq: 0,
            injected: SimTime::ZERO,
            ttl,
            hop_count: hop0,
            payload_len: 64,
        };
        let budget = u32::from(p.ttl) + u32::from(p.hop_count);
        let mut hops = 0u32;
        while let Some(next) = p.forwarded() {
            prop_assert_eq!(next.ttl, p.ttl - 1, "TTL steps down by one");
            prop_assert_eq!(
                next.hop_count,
                p.hop_count.saturating_add(1),
                "hop count steps up by one"
            );
            if next.hop_count < u8::MAX {
                prop_assert_eq!(
                    u32::from(next.ttl) + u32::from(next.hop_count),
                    budget,
                    "ttl + hops is conserved"
                );
            }
            p = next;
            hops += 1;
            prop_assert!(hops <= u32::from(ttl), "hop budget exceeded");
        }
        prop_assert!(p.ttl <= 1, "the chain only ends at TTL exhaustion");
        prop_assert_eq!(hops, u32::from(ttl.saturating_sub(1)), "exact hop budget");
    }
}

// ---------------------------------------------------------------------
// FlowState arrival conservation
// ---------------------------------------------------------------------

fn flow_model() -> impl Strategy<Value = FlowModel> {
    prop_oneof![
        (0u64..5_000).prop_map(|us| FlowModel::Cbr {
            interval: SimDuration::from_micros(us),
        }),
        (0u64..5_000, 0u8..6, 0u8..6).prop_map(|(us, a, b)| FlowModel::BurstyVideo {
            frame_interval: SimDuration::from_micros(us),
            min_burst: a,
            max_burst: b,
        }),
    ]
}

fn spec(model: FlowModel, start_us: u64) -> FlowSpec {
    FlowSpec {
        id: 1,
        src: NodeId(0),
        dst: NodeId(1),
        model,
        payload: 128,
        start: SimTime::ZERO + SimDuration::from_micros(start_us),
    }
}

proptest! {
    /// Arrival conservation: sampling the flow clock at any monotone
    /// sequence of instants emits exactly the packets one sample at the
    /// final instant would — same total, same RNG stream position, same
    /// end state. This is the generator-level half of the conservation
    /// ledger: how often the engine polls a source cannot change the
    /// workload.
    #[test]
    fn take_due_is_sampling_invariant(
        model in flow_model(),
        start_us in 0u64..10_000,
        seed in 0u64..1_000,
        mut cuts in proptest::collection::vec(0u64..60_000, 1..12),
    ) {
        cuts.sort_unstable();
        let last = *cuts.last().unwrap();

        let mut incremental = FlowState::new(spec(model, start_us));
        let mut rng_inc = SimRng::seed_from_u64(seed);
        let mut total_inc = 0u64;
        for &cut in &cuts {
            total_inc += incremental.take_due(
                SimTime::ZERO + SimDuration::from_micros(cut),
                &mut rng_inc,
            );
        }

        let mut oneshot = FlowState::new(spec(model, start_us));
        let mut rng_one = SimRng::seed_from_u64(seed);
        let total_one =
            oneshot.take_due(SimTime::ZERO + SimDuration::from_micros(last), &mut rng_one);

        prop_assert_eq!(total_inc, total_one, "packet totals must agree");
        prop_assert_eq!(incremental, oneshot, "arrival clocks must agree");
        prop_assert_eq!(rng_inc, rng_one, "RNG stream positions must agree");
    }

    /// CBR is closed-form and draw-free: the emitted count is exactly
    /// the number of arrival ticks in `[start, now]`, and the RNG is
    /// never touched.
    #[test]
    fn cbr_emits_the_closed_form_count(
        interval_us in 0u64..5_000,
        start_us in 0u64..10_000,
        now_us in 0u64..60_000,
    ) {
        let model = FlowModel::Cbr {
            interval: SimDuration::from_micros(interval_us),
        };
        let mut state = FlowState::new(spec(model, start_us));
        let mut rng = SimRng::seed_from_u64(9);
        let untouched = rng.clone();
        let got = state.take_due(SimTime::ZERO + SimDuration::from_micros(now_us), &mut rng);
        let step = interval_us.max(1);
        let want = if now_us < start_us {
            0
        } else {
            (now_us - start_us) / step + 1
        };
        prop_assert_eq!(got, want, "closed-form CBR arrival count");
        prop_assert_eq!(rng, untouched, "CBR must not consume randomness");
    }

    /// Bursty frames respect their configured size band even when the
    /// bounds are given in either order.
    #[test]
    fn bursty_frames_stay_in_band(
        a in 0u8..10,
        b in 0u8..10,
        seed in 0u64..1_000,
    ) {
        let model = FlowModel::BurstyVideo {
            frame_interval: SimDuration::from_millis(1),
            min_burst: a,
            max_burst: b,
        };
        let (lo, hi) = (u64::from(a.min(b)), u64::from(a.max(b)));
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let n = model.packets_per_tick(&mut rng);
            prop_assert!((lo..=hi).contains(&n), "burst {n} outside [{lo}, {hi}]");
        }
    }
}
