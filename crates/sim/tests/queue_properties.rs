//! Differential property tests for the engine event queue: after *any*
//! interleaving of pushes and pops — due times spanning the due window,
//! the ring and the far-future overflow heap — the [`TimerWheel`]-backed
//! queue must pop exactly the same sequence as the reference binary
//! heap, which itself must equal a global sort by `(time, seq)`.

use proptest::prelude::*;
use qolsr_sim::queue::{EventQueue, QueueItem, SchedulerKind};

/// A stand-in for the engine's scheduled event: ordered by
/// `(time, seq)`, like `Scheduled<M>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Item {
    time: u64,
    seq: u64,
}

impl QueueItem for Item {
    fn due_micros(&self) -> u64 {
        self.time
    }
}

/// One step of a queue history: enqueue an event some delay after the
/// current virtual time, or pop the next event (advancing time).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Delay in µs ahead of "now"; spans same-slot (0), in-ring
    /// (≤ ~8.4 s) and overflow (> 8.4 s) targets.
    Push(u64),
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Push(0)),                             // same slot as "now"
        (0u64..2_000).prop_map(Op::Push),              // same or next slot
        (0u64..8_000_000).prop_map(Op::Push),          // ring
        (8_000_000u64..40_000_000).prop_map(Op::Push), // overflow
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn wheel_equals_heap_on_arbitrary_histories(ops in proptest::collection::vec(op(), 1..400)) {
        let mut wheel = EventQueue::new(SchedulerKind::TimerWheel);
        let mut heap = EventQueue::new(SchedulerKind::BinaryHeap);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut popped_wheel = Vec::new();
        for op in ops {
            match op {
                Op::Push(delay) => {
                    let item = Item { time: now + delay, seq };
                    seq += 1;
                    wheel.push(item);
                    heap.push(item);
                }
                Op::Pop => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop divergence");
                    if let Some(item) = a {
                        // The engine's clock is monotone: events dispatch
                        // in order, so "now" follows the pop stream.
                        now = now.max(item.time);
                        popped_wheel.push(item);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.next_due(), heap.next_due());
        }
        // Drain both; the combined pop stream must be globally sorted.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            match a {
                Some(item) => popped_wheel.push(item),
                None => break,
            }
        }
        let mut sorted = popped_wheel.clone();
        sorted.sort();
        prop_assert_eq!(&popped_wheel, &sorted, "pop stream must be the global sort");
    }
}
