//! Property tests of the region-sharded executor's two structural
//! invariants:
//!
//! 1. **Partition** — the shard map is a true partition of the node set
//!    at all times: every node lives in exactly one shard, `shard_of`
//!    agrees with the member lists, and a node that re-joins after a
//!    `Leave` is re-homed to the shard covering its current position.
//! 2. **Order** — cross-shard frames are applied in global `(time, seq)`
//!    order whatever the parallel window width: for *any* window size
//!    and any churn history, the sharded trace and end state are
//!    byte-identical to the single-queue reference, and dispatch times
//!    never go backwards.

use proptest::prelude::*;
use qolsr_graph::{NodeId, Point2, Topology, TopologyBuilder, WorldEvent};
use qolsr_metrics::LinkQos;
use qolsr_sim::trace::{TraceEvent, TraceKind};
use qolsr_sim::{
    Actor, Context, RadioConfig, ShardedSimulator, SimDuration, SimStats, SimTime, Simulator,
    TimerId,
};

/// Minimal chatty actor: periodic broadcast, remembers what it heard —
/// enough traffic that mis-ordered or lost cross-shard frames change
/// the end state.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
struct Echo {
    heard: Vec<(NodeId, u32)>,
    ticks: u32,
}

impl Actor for Echo {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.broadcast(ctx.node_id().0);
        ctx.set_timer(SimDuration::from_micros(9_000), TimerId(1));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _t: TimerId) {
        self.ticks += 1;
        ctx.broadcast(self.ticks);
        ctx.set_timer(SimDuration::from_micros(9_000), TimerId(1));
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
        self.heard.push((from, msg));
    }

    fn on_reset(&mut self) {
        *self = Self::default();
    }
}

/// A connected chain of `n` nodes at proptest-chosen positions.
fn chain(positions: &[(f64, f64)]) -> Topology {
    let mut b = TopologyBuilder::new(500.0);
    let ids: Vec<NodeId> = positions
        .iter()
        .map(|&(x, y)| b.add_node(Point2::new(x, y)))
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], LinkQos::uniform(1)).unwrap();
    }
    b.build()
}

/// One churn step: at `delay` µs after the previous step, node `node`
/// either powers off, or re-joins at a fresh position (a `Move` applied
/// at the same instant, just before the `Join`, so re-homing must use
/// the *new* position).
#[derive(Debug, Clone, Copy)]
struct ChurnOp {
    delay: u64,
    node: usize,
    rejoin_at: Option<(f64, f64)>,
}

fn churn_ops(n: usize) -> impl Strategy<Value = Vec<ChurnOp>> {
    let op = (
        0u64..200_000,
        0..n,
        prop_oneof![
            Just(None),
            ((0.0..500.0f64), (0.0..500.0f64)).prop_map(Some)
        ],
    )
        .prop_map(|(delay, node, rejoin_at)| ChurnOp {
            delay,
            node,
            rejoin_at,
        });
    proptest::collection::vec(op, 0..12)
}

/// Expands churn ops into absolute-time world events: `None` is a
/// `Leave`, `Some(pos)` a `Move` + `Join` pair at the same instant.
/// Normalized against tracked liveness — a "rejoin" drawn for a node
/// that is still up becomes a `Leave`, and a `Leave` for a node already
/// down is dropped — so `Join` always marks a *real* rejoin (a `Move`
/// of a live node never re-homes it, by design, and would weaken the
/// position assertion below).
fn world_events(n: usize, ops: &[ChurnOp]) -> Vec<(SimTime, WorldEvent)> {
    let mut at = 50_000u64;
    let mut active = vec![true; n];
    let mut out = Vec::new();
    for op in ops {
        at += op.delay;
        let t = SimTime::from_micros(at);
        let node = NodeId(op.node as u32);
        let up = &mut active[op.node];
        match op.rejoin_at {
            Some((x, y)) if !*up => {
                *up = true;
                out.push((
                    t,
                    WorldEvent::Move {
                        node,
                        to: Point2::new(x, y),
                    },
                ));
                out.push((t, WorldEvent::Join { node }));
            }
            _ if *up => {
                *up = false;
                out.push((t, WorldEvent::Leave { node }));
            }
            _ => {}
        }
    }
    out
}

fn run_sharded(
    topo: &Topology,
    seed: u64,
    shards: u32,
    window_us: Option<u64>,
    events: &[(SimTime, WorldEvent)],
) -> ShardedSimulator<Echo> {
    let mut sim = ShardedSimulator::new(
        topo.clone(),
        RadioConfig::default(),
        seed,
        shards,
        |_, _| Echo::default(),
    );
    if let Some(w) = window_us {
        sim.set_window(SimDuration::from_micros(w));
    }
    sim.enable_trace(1 << 14);
    for &(t, ev) in events {
        sim.schedule_world(t, ev);
    }
    sim.run_for(SimDuration::from_millis(800));
    sim
}

type Fingerprint = (SimStats, Vec<(NodeId, Echo)>, Vec<TraceEvent>);

fn fingerprint(
    stats: SimStats,
    actors: Vec<(NodeId, Echo)>,
    trace: Vec<TraceEvent>,
) -> Fingerprint {
    (stats, actors, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition invariant: after any churn history, every node is in
    /// exactly one shard, `shard_of` matches the member lists, and every
    /// *active* node's home shard covers its current position (initial
    /// placement for never-churned nodes, the rejoin position for
    /// re-homed ones — this op set only moves nodes at rejoin).
    #[test]
    fn shard_map_is_a_partition_under_churn(
        positions in proptest::collection::vec(((0.0..500.0f64), (0.0..500.0f64)), 2..16),
        shards in 1u32..6,
        ops in churn_ops(2),
    ) {
        let topo = chain(&positions);
        let n = topo.len();
        // Remap op node indices into range.
        let ops: Vec<ChurnOp> = ops
            .into_iter()
            .map(|op| ChurnOp { node: op.node % n, ..op })
            .collect();
        let sim = run_sharded(&topo, 7, shards, None, &world_events(n, &ops));

        // Every node appears in exactly one member list, at the slot
        // `shard_of` claims.
        let mut seen = vec![0u32; n];
        for s in 0..sim.shard_count() {
            for &m in sim.shard_members(s) {
                seen[m.index()] += 1;
                prop_assert_eq!(sim.shard_of(m), s, "shard_of disagrees with members");
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {:?}", seen);

        // Active nodes are homed where their position says they belong.
        for node in sim.world().nodes() {
            if sim.world().is_active(node) {
                let want = sim.shard_for_position(sim.world().position(node));
                prop_assert_eq!(
                    sim.shard_of(node), want,
                    "active node {} homed off-region", node.index()
                );
            }
        }
    }

    /// Order invariant: whatever the parallel window width, the sharded
    /// run's trace (and stats, and every actor's end state) is identical
    /// to the single-queue engine's, and dispatch times are monotone.
    #[test]
    fn cross_shard_order_is_window_size_invariant(
        positions in proptest::collection::vec(((0.0..500.0f64), (0.0..500.0f64)), 2..10),
        shards in 2u32..5,
        window_us in 1u64..2_500,
        ops in churn_ops(2),
    ) {
        let topo = chain(&positions);
        let n = topo.len();
        let ops: Vec<ChurnOp> = ops
            .into_iter()
            .map(|op| ChurnOp { node: op.node % n, ..op })
            .collect();
        let events = world_events(n, &ops);

        let mut reference = Simulator::new(topo.clone(), RadioConfig::default(), 7, |_| {
            Echo::default()
        });
        reference.enable_trace(1 << 14);
        for &(t, ev) in &events {
            reference.schedule_world(t, ev);
        }
        reference.run_for(SimDuration::from_millis(800));
        let want = fingerprint(
            reference.stats(),
            reference.actors().map(|(id, a)| (id, a.clone())).collect(),
            reference.trace().unwrap().iter().copied().collect(),
        );

        let sharded = run_sharded(&topo, 7, shards, Some(window_us), &events);
        let got = fingerprint(
            sharded.stats(),
            sharded.actors().map(|(id, a)| (id, a.clone())).collect(),
            sharded.trace().unwrap().iter().copied().collect(),
        );
        prop_assert_eq!(&got, &want, "window {}µs diverges from reference", window_us);

        // Dispatch order never runs backwards in time.
        let mut last = SimTime::ZERO;
        for ev in &got.2 {
            if ev.kind == TraceKind::Dispatched {
                prop_assert!(ev.time >= last, "time ran backwards");
                last = ev.time;
            }
        }
    }
}
