//! Measurement utilities: online scalar statistics and log-scale
//! histograms, used by the experiment harness to aggregate per-run
//! observations.

use std::fmt;

/// Online mean/variance accumulator (Welford's algorithm) with min/max
/// tracking.
///
/// # Examples
///
/// ```
/// use qolsr_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than 2 observations).
    pub fn population_stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Sample standard deviation (0 when fewer than 2 observations).
    pub fn sample_stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Standard error of the mean (0 when fewer than 2 observations).
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the ~95% normal confidence interval for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (95% CI), min={:.4}, max={:.4}",
            self.count,
            self.mean(),
            self.ci95_half_width(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
        )
    }
}

/// Maximum number of fisheye TC scope rings a protocol configuration may
/// define — sized so per-ring emission counters can live in fixed
/// arrays on the hot path (no allocation, `Copy` stats structs).
pub const TC_RING_SLOTS: usize = 4;

/// Cheap hot-path counters aggregated by the live-protocol experiments:
/// engine-side event/timer pops plus protocol-side routing-cache,
/// TC-dissemination and wire-decode activity. All counting happens with
/// plain `u64` increments on state the hot path already owns — no
/// atomics, no allocation.
///
/// # Examples
///
/// ```
/// use qolsr_sim::stats::HotPathCounters;
///
/// let mut total = HotPathCounters::default();
/// total.merge(&HotPathCounters {
///     events_popped: 10,
///     timers_fired: 4,
///     routes_recomputed: 1,
///     route_cache_hits: 3,
///     ..HotPathCounters::default()
/// });
/// assert_eq!(total.events_popped, 10);
/// assert_eq!(total.route_cache_hits, 3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HotPathCounters {
    /// Events dispatched by the engine (timer + delivery + start + world).
    pub events_popped: u64,
    /// Timer firings dispatched.
    pub timers_fired: u64,
    /// Routing tables recomputed from scratch (cache miss or dirty).
    pub routes_recomputed: u64,
    /// Routing-table queries served from the incremental cache.
    pub route_cache_hits: u64,
    /// TC emissions per fisheye scope ring (index = ring, innermost
    /// first). All zero under uniform (RFC 3626) scoping.
    pub tc_ring_emissions: [u64; TC_RING_SLOTS],
    /// TC deliveries resolved from the peeked header alone (duplicate or
    /// stale-ANSN messages whose body was never parsed).
    pub dup_peek_hits: u64,
    /// Payload bytes run through the full wire decoder.
    pub bytes_decoded: u64,
    /// Resident protocol-table entries (topology tuples/overlays,
    /// duplicate records, shared-store links) at sampling time — an
    /// end-of-run *gauge*, not a monotone counter, surfaced by the
    /// live-scale experiments and budgeted in CI.
    pub resident_entries: u64,
    /// Approximate resident heap bytes of the protocol tables plus the
    /// shared store at sampling time (gauge, like
    /// [`HotPathCounters::resident_entries`]).
    pub resident_bytes: u64,
    /// Received frames dropped as undecodable garbage (corrupted in
    /// flight or injected by a fault suite). Zero in fault-free runs.
    pub malformed_frames: u64,
}

impl HotPathCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &HotPathCounters) {
        self.events_popped += other.events_popped;
        self.timers_fired += other.timers_fired;
        self.routes_recomputed += other.routes_recomputed;
        self.route_cache_hits += other.route_cache_hits;
        for (mine, theirs) in self
            .tc_ring_emissions
            .iter_mut()
            .zip(other.tc_ring_emissions)
        {
            *mine += theirs;
        }
        self.dup_peek_hits += other.dup_peek_hits;
        self.bytes_decoded += other.bytes_decoded;
        self.resident_entries += other.resident_entries;
        self.resident_bytes += other.resident_bytes;
        self.malformed_frames += other.malformed_frames;
    }

    /// Fraction of routing-table queries served from cache (0 when no
    /// queries happened).
    pub fn route_cache_hit_rate(&self) -> f64 {
        let total = self.routes_recomputed + self.route_cache_hits;
        if total == 0 {
            0.0
        } else {
            self.route_cache_hits as f64 / total as f64
        }
    }
}

/// A histogram over `u64` observations with power-of-two buckets
/// (bucket `k` holds values whose bit length is `k`).
///
/// # Examples
///
/// ```
/// use qolsr_sim::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [1, 2, 3, 4, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.mean() > 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // bit length, 0..=64
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if k >= 64 { u64::MAX } else { (1u64 << k) - 1 });
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.sample_stddev() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs = [1.0, 5.0, 2.5, 7.25, -3.0, 0.0, 9.0];
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..3] {
            left.push(x);
        }
        for &x in &xs[3..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_stddev() - all.sample_stddev()).abs() < 1e-12);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(4.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 4.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut few = OnlineStats::new();
        let mut many = OnlineStats::new();
        for i in 0..4 {
            few.push((i % 2) as f64);
        }
        for i in 0..400 {
            many.push((i % 2) as f64);
        }
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 1, 2, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1 + 1 + 2 + 8 + 1024) as f64 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile_bound(0.5), Some(1));
        assert!(h.quantile_bound(1.0).unwrap() >= 1_000_000);
        assert_eq!(Log2Histogram::new().quantile_bound(0.5), None);
    }

    #[test]
    fn hot_path_counters_merge_all_fields() {
        let mut total = HotPathCounters::default();
        let part = HotPathCounters {
            events_popped: 5,
            timers_fired: 2,
            routes_recomputed: 1,
            route_cache_hits: 4,
            tc_ring_emissions: [3, 2, 1, 0],
            dup_peek_hits: 7,
            bytes_decoded: 900,
            resident_entries: 11,
            resident_bytes: 256,
            malformed_frames: 3,
        };
        total.merge(&part);
        total.merge(&part);
        assert_eq!(total.tc_ring_emissions, [6, 4, 2, 0]);
        assert_eq!(total.dup_peek_hits, 14);
        assert_eq!(total.bytes_decoded, 1800);
        assert_eq!(total.resident_entries, 22);
        assert_eq!(total.resident_bytes, 512);
        assert_eq!(total.malformed_frames, 6);
        assert_eq!(total.route_cache_hit_rate(), 8.0 / 10.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        assert!(!s.to_string().is_empty());
    }
}
