//! Virtual time: microsecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration of virtual time (microsecond resolution).
///
/// # Examples
///
/// ```
/// use qolsr_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_micros(), 1_500_000);
/// assert_eq!(d, SimDuration::from_secs(1) + SimDuration::from_millis(500));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub const fn saturating_mul(self, k: u64) -> Self {
        Self(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// An instant of virtual time, measured from simulation start.
///
/// # Examples
///
/// ```
/// use qolsr_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: Self = Self(0);

    /// Creates an instant from microseconds since start.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_micros(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_micros(5).as_micros(), 5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2 - t, SimDuration::from_millis(2));
        let mut t3 = t2;
        t3 += SimDuration::from_micros(1);
        assert_eq!(t3.as_micros(), 3_001);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "t=1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            SimDuration::from_secs(1).saturating_mul(3),
            SimDuration::from_secs(3)
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX).saturating_mul(2),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn seconds_float() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(500_000).as_secs_f64() - 0.5).abs() < 1e-12);
    }
}
