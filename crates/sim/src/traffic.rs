//! Data-plane traffic primitives: seeded flow generators, the per-node
//! bounded transmit queue, and per-flow delivery records.
//!
//! The control plane (HELLO/TC flooding) answers *"does a route exist?"*;
//! the paper's claim is about *service*: a QoS-aware neighbor selection
//! should deliver application traffic with better delay/jitter/loss than
//! hop-count OLSR. This module holds the protocol-agnostic pieces of
//! that data plane — the workload shapes (CBR and bursty video per the
//! QoSIP evaluation methodology), the store-and-forward queue model, and
//! the per-flow statistics — while the protocol crate owns the actual
//! forwarding (route lookup, wire format, per-hop header patch).
//!
//! Determinism: every random decision (bursty frame sizes, queue service
//! jitter) draws from a *dedicated* per-node stream seeded from
//! `seed ^ TRAFFIC_STREAM_SALT` — never from the engine or protocol
//! streams — so enabling traffic cannot perturb a single control-plane
//! draw, and zero-flow runs replay byte-identically to a build without
//! this module.

use std::collections::VecDeque;

use qolsr_graph::NodeId;

use crate::rng::SimRng;
use crate::stats::Log2Histogram;
use crate::time::{SimDuration, SimTime};

/// Salt separating the per-node traffic streams (flow arrivals, queue
/// service jitter) from the engine seed: the traffic master RNG is
/// `seed ^ TRAFFIC_STREAM_SALT`, split once per node in node order.
/// Runs without installed flows never draw from these streams.
pub const TRAFFIC_STREAM_SALT: u64 = 0x4441_5441_464c_4f57; // "DATAFLOW"

/// The arrival process of one application flow (per the QoSIP workload
/// taxonomy: constant-bit-rate sources and bursty multimedia).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModel {
    /// Constant bit rate: exactly one packet every `interval`. Draws no
    /// randomness at all.
    Cbr {
        /// Packet spacing (clamped to ≥ 1 µs).
        interval: SimDuration,
    },
    /// Bursty video: every `frame_interval` a frame is emitted as a
    /// burst of `min_burst..=max_burst` packets, the size drawn from the
    /// node's traffic stream (one draw per frame).
    BurstyVideo {
        /// Frame spacing (clamped to ≥ 1 µs).
        frame_interval: SimDuration,
        /// Smallest burst (packets per frame).
        min_burst: u8,
        /// Largest burst (packets per frame).
        max_burst: u8,
    },
}

impl FlowModel {
    /// The arrival-clock step of the model, clamped to ≥ 1 µs so the
    /// clock always advances.
    pub fn interval(&self) -> SimDuration {
        let raw = match self {
            FlowModel::Cbr { interval } => *interval,
            FlowModel::BurstyVideo { frame_interval, .. } => *frame_interval,
        };
        raw.max(SimDuration::from_micros(1))
    }

    /// Packets emitted at one arrival tick; bursty sizes draw once from
    /// `rng`, CBR draws nothing.
    pub fn packets_per_tick(&self, rng: &mut SimRng) -> u64 {
        match self {
            FlowModel::Cbr { .. } => 1,
            FlowModel::BurstyVideo {
                min_burst,
                max_burst,
                ..
            } => {
                let lo = u64::from(*min_burst.min(max_burst));
                let hi = u64::from(*min_burst.max(max_burst));
                lo + rng.next_below(hi - lo + 1)
            }
        }
    }
}

/// One seeded application flow: a source injects packets toward a
/// destination according to a [`FlowModel`], starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Flow identifier (carried in every data frame; per-flow records
    /// key on it, so it should be unique across the flow set).
    pub id: u16,
    /// Source node (where packets are injected).
    pub src: NodeId,
    /// Destination node (where deliveries are recorded).
    pub dst: NodeId,
    /// Arrival process.
    pub model: FlowModel,
    /// Application payload bytes per packet.
    pub payload: u16,
    /// First arrival instant.
    pub start: SimTime,
}

/// The live arrival state of one flow at its source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowState {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// Next packet sequence number (wraps; diagnostic only).
    pub next_seq: u16,
    /// Next arrival-clock tick.
    pub next_at: SimTime,
}

impl FlowState {
    /// Fresh state with the arrival clock at the flow's start instant.
    pub fn new(spec: FlowSpec) -> Self {
        Self {
            spec,
            next_seq: 0,
            next_at: spec.start,
        }
    }

    /// Consumes every arrival tick due at or before `now` and returns
    /// the number of packets they emit (burst draws come from `rng`).
    /// After a gap (e.g. a node that was down), all missed ticks fire at
    /// once — the bounded queue absorbs or sheds the backlog.
    pub fn take_due(&mut self, now: SimTime, rng: &mut SimRng) -> u64 {
        let step = self.spec.model.interval();
        let mut packets = 0;
        while self.next_at <= now {
            packets += self.spec.model.packets_per_tick(rng);
            self.next_at += step;
        }
        packets
    }
}

/// The logical lifecycle state a data packet carries hop to hop —
/// the header twin of the wire-level data frame. `forwarded` mirrors the
/// wire codec's per-hop header patch exactly, so the TTL/hop invariants
/// proven on this struct hold for the byte path too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow identifier.
    pub flow: u16,
    /// Per-flow packet sequence number (wraps; diagnostic only).
    pub seq: u16,
    /// Injection instant at the source (end-to-end delay reference).
    pub injected: SimTime,
    /// Remaining hops the packet may travel.
    pub ttl: u8,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Application payload bytes.
    pub payload_len: u16,
}

impl DataPacket {
    /// The packet after one relay hop: TTL down one, hop count up one
    /// (saturating). `None` when the TTL is exhausted (`ttl <= 1`) —
    /// the relay must drop instead of forwarding.
    pub fn forwarded(&self) -> Option<DataPacket> {
        if self.ttl <= 1 {
            return None;
        }
        Some(DataPacket {
            ttl: self.ttl - 1,
            hop_count: self.hop_count.saturating_add(1),
            ..*self
        })
    }
}

/// Why the data plane dropped a packet at a node (the engine-level radio
/// causes — PHY loss, FCS, partition, collision, stale — are counted in
/// [`crate::SimStats`]'s `data_*` fields instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The serving node had no route to the destination.
    NoRoute,
    /// The transmit queue was at capacity.
    QueueFull,
    /// The TTL expired at a relay.
    TtlExpired,
    /// The packet sat in a queue that a reboot (leave/rejoin or crash)
    /// wiped.
    QueueWiped,
}

/// Per-node data-plane counters. All exact integers so differential
/// suites can compare them byte-for-byte across engines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Packets created at this node (it is the flow source).
    pub injected: u64,
    /// Packets delivered here (it is the flow destination).
    pub delivered: u64,
    /// Relay enqueues (packets accepted for forwarding).
    pub forwarded: u64,
    /// Data frames handed to the radio (per-hop transmissions).
    pub data_tx: u64,
    /// Data frames received (deliveries + relay arrivals).
    pub data_rx: u64,
    /// Data bytes handed to the radio.
    pub data_bytes_sent: u64,
    /// Drops: no route to the destination at service time.
    pub drop_no_route: u64,
    /// Drops: transmit queue at capacity.
    pub drop_queue_full: u64,
    /// Drops: TTL expired at a relay.
    pub drop_ttl_expired: u64,
    /// Drops: queued packets wiped by a reboot.
    pub drop_queue_wiped: u64,
}

impl TrafficStats {
    /// Counts one node-level drop.
    pub fn count_drop(&mut self, cause: DropCause) {
        match cause {
            DropCause::NoRoute => self.drop_no_route += 1,
            DropCause::QueueFull => self.drop_queue_full += 1,
            DropCause::TtlExpired => self.drop_ttl_expired += 1,
            DropCause::QueueWiped => self.drop_queue_wiped += 1,
        }
    }

    /// Sum of all node-level drop counters.
    pub fn drops(&self) -> u64 {
        self.drop_no_route + self.drop_queue_full + self.drop_ttl_expired + self.drop_queue_wiped
    }

    /// Field-wise sum (network-level aggregation).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.forwarded += other.forwarded;
        self.data_tx += other.data_tx;
        self.data_rx += other.data_rx;
        self.data_bytes_sent += other.data_bytes_sent;
        self.drop_no_route += other.drop_no_route;
        self.drop_queue_full += other.drop_queue_full;
        self.drop_ttl_expired += other.drop_ttl_expired;
        self.drop_queue_wiped += other.drop_queue_wiped;
    }
}

/// End-to-end delivery record of one flow, kept at its destination.
/// Exact-integer fields (plus the log₂ delay histogram) so differential
/// suites can compare records byte-for-byte across engines.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Sum of end-to-end delays, µs.
    pub delay_sum_us: u64,
    /// Largest end-to-end delay, µs.
    pub delay_max_us: u64,
    /// Delay of the most recent delivery, µs (the jitter reference).
    pub last_delay_us: u64,
    /// Sum of |delay − previous delay| over consecutive deliveries
    /// (RFC 3550-style inter-arrival jitter, un-smoothed), µs.
    pub jitter_sum_us: u64,
    /// Number of consecutive-delivery jitter samples (`delivered − 1`
    /// while the record is unmerged).
    pub jitter_samples: u64,
    /// Sum of hops travelled by delivered packets.
    pub hops_sum: u64,
    /// Log₂ histogram of end-to-end delays (µs) — p99 and friends.
    pub delay_hist: Log2Histogram,
}

impl FlowRecord {
    /// Records one delivery with its end-to-end delay and hop count.
    pub fn record_delivery(&mut self, delay_us: u64, hops: u64) {
        if self.delivered > 0 {
            self.jitter_sum_us += self.last_delay_us.abs_diff(delay_us);
            self.jitter_samples += 1;
        }
        self.delivered += 1;
        self.delay_sum_us += delay_us;
        self.delay_max_us = self.delay_max_us.max(delay_us);
        self.last_delay_us = delay_us;
        self.hops_sum += hops;
        self.delay_hist.record(delay_us);
    }

    /// Mean end-to-end delay, µs (0 when nothing was delivered).
    pub fn mean_delay_us(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay_sum_us as f64 / self.delivered as f64
        }
    }

    /// Mean inter-arrival jitter, µs (0 with fewer than 2 deliveries).
    pub fn mean_jitter_us(&self) -> f64 {
        if self.jitter_samples == 0 {
            0.0
        } else {
            self.jitter_sum_us as f64 / self.jitter_samples as f64
        }
    }

    /// Mean hops per delivered packet (0 when nothing was delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered as f64
        }
    }

    /// Upper bound of the delay quantile `q` from the histogram, µs.
    pub fn delay_quantile_us(&self, q: f64) -> Option<u64> {
        self.delay_hist.quantile_bound(q)
    }

    /// Field-wise aggregation (across flows or runs). Jitter sums stay
    /// additive; `last_delay_us` is meaningless on a merged record and
    /// no cross-record jitter sample is synthesized.
    pub fn merge(&mut self, other: &FlowRecord) {
        self.delivered += other.delivered;
        self.delay_sum_us += other.delay_sum_us;
        self.delay_max_us = self.delay_max_us.max(other.delay_max_us);
        self.last_delay_us = other.last_delay_us;
        self.jitter_sum_us += other.jitter_sum_us;
        self.jitter_samples += other.jitter_samples;
        self.hops_sum += other.hops_sum;
        self.delay_hist.merge(&other.delay_hist);
    }
}

/// Service parameters of the per-node transmit queue, plus the initial
/// TTL of originated data packets. All integer-valued so protocol
/// configurations embedding it stay `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxQueueConfig {
    /// Queue capacity in packets (clamped to ≥ 1).
    pub capacity: u32,
    /// Base service time per packet (the inverse service rate).
    pub service_interval: SimDuration,
    /// Upper bound (exclusive) of the uniform per-packet service jitter,
    /// drawn from the node's traffic stream; zero draws nothing.
    pub service_jitter: SimDuration,
    /// Initial TTL of originated data packets.
    pub data_ttl: u8,
}

impl Default for TxQueueConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            service_interval: SimDuration::from_millis(2),
            service_jitter: SimDuration::from_millis(1),
            data_ttl: 32,
        }
    }
}

impl TxQueueConfig {
    /// One service-time draw: base interval plus uniform jitter from the
    /// node's traffic stream. Zero jitter consumes no randomness.
    pub fn service_delay(&self, rng: &mut SimRng) -> SimDuration {
        let jitter_us = self.service_jitter.as_micros();
        if jitter_us == 0 {
            self.service_interval
        } else {
            self.service_interval + SimDuration::from_micros(rng.next_below(jitter_us))
        }
    }
}

/// A bounded FIFO transmit queue: arrivals beyond capacity are rejected
/// (tail drop), service pops strictly in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> TxQueue<T> {
    /// An empty queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues at the tail; hands the item back when the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Dequeues from the head (arrival order).
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops everything (a reboot wiping volatile memory); returns how
    /// many items were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo_and_bounded() {
        let mut q = TxQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3), "tail drop at capacity");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()), "capacity frees on pop");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_capacity_clamps_to_one() {
        let mut q = TxQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.push('a'), Ok(()));
        assert_eq!(q.push('b'), Err('b'));
        assert_eq!(q.clear(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn cbr_arrivals_are_exact_and_draw_nothing() {
        let spec = FlowSpec {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            model: FlowModel::Cbr {
                interval: SimDuration::from_millis(100),
            },
            payload: 64,
            start: SimTime::ZERO + SimDuration::from_secs(1),
        };
        let mut state = FlowState::new(spec);
        let mut rng = SimRng::seed_from_u64(7);
        let pristine = rng.clone();
        // Nothing due before the start instant.
        assert_eq!(state.take_due(SimTime::ZERO, &mut rng), 0);
        // One second past start: ticks at 1.0, 1.1, …, 2.0 inclusive.
        let n = state.take_due(SimTime::ZERO + SimDuration::from_secs(2), &mut rng);
        assert_eq!(n, 11);
        assert_eq!(rng, pristine, "CBR must not consume randomness");
        assert_eq!(
            state.take_due(SimTime::ZERO + SimDuration::from_secs(2), &mut rng),
            0
        );
    }

    #[test]
    fn bursty_arrivals_stay_in_bounds_and_replay_from_seed() {
        let spec = FlowSpec {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            model: FlowModel::BurstyVideo {
                frame_interval: SimDuration::from_millis(40),
                min_burst: 2,
                max_burst: 5,
            },
            payload: 1200,
            start: SimTime::ZERO,
        };
        let run = |seed| {
            let mut state = FlowState::new(spec);
            let mut rng = SimRng::seed_from_u64(seed);
            state.take_due(SimTime::ZERO + SimDuration::from_secs(1), &mut rng)
        };
        // 26 frames (0.0 .. 1.0 inclusive), 2–5 packets each.
        let n = run(3);
        assert!((52..=130).contains(&n), "got {n}");
        assert_eq!(run(3), n, "seeded replay is exact");
    }

    #[test]
    fn zero_interval_clamps_instead_of_spinning() {
        let model = FlowModel::Cbr {
            interval: SimDuration::ZERO,
        };
        assert_eq!(model.interval(), SimDuration::from_micros(1));
    }

    #[test]
    fn forwarded_consumes_ttl_and_saturates_hops() {
        let mut p = DataPacket {
            src: NodeId(0),
            dst: NodeId(9),
            flow: 4,
            seq: 1,
            injected: SimTime::ZERO,
            ttl: 3,
            hop_count: 254,
            payload_len: 100,
        };
        p = p.forwarded().expect("ttl 3 forwards");
        assert_eq!((p.ttl, p.hop_count), (2, 255));
        p = p.forwarded().expect("ttl 2 forwards");
        assert_eq!((p.ttl, p.hop_count), (1, 255), "hop count saturates");
        assert_eq!(p.forwarded(), None, "ttl 1 drops");
    }

    #[test]
    fn flow_record_tracks_delay_jitter_and_hops() {
        let mut r = FlowRecord::default();
        r.record_delivery(1_000, 2);
        r.record_delivery(3_000, 3);
        r.record_delivery(2_000, 2);
        assert_eq!(r.delivered, 3);
        assert_eq!(r.delay_max_us, 3_000);
        assert!((r.mean_delay_us() - 2_000.0).abs() < f64::EPSILON);
        // |3000-1000| + |2000-3000| over 2 samples.
        assert_eq!(r.jitter_sum_us, 3_000);
        assert!((r.mean_jitter_us() - 1_500.0).abs() < f64::EPSILON);
        assert!((r.mean_hops() - 7.0 / 3.0).abs() < 1e-12);
        assert!(r.delay_quantile_us(0.99).unwrap() >= 3_000);
    }

    #[test]
    fn flow_record_merge_is_additive() {
        let mut a = FlowRecord::default();
        a.record_delivery(100, 1);
        a.record_delivery(200, 1);
        let mut b = FlowRecord::default();
        b.record_delivery(400, 2);
        a.merge(&b);
        assert_eq!(a.delivered, 3);
        assert_eq!(a.delay_sum_us, 700);
        assert_eq!(a.delay_max_us, 400);
        assert_eq!(a.hops_sum, 4);
        assert_eq!(a.jitter_samples, 1, "no cross-record jitter sample");
    }

    #[test]
    fn traffic_stats_drop_accounting() {
        let mut s = TrafficStats::default();
        s.count_drop(DropCause::NoRoute);
        s.count_drop(DropCause::QueueFull);
        s.count_drop(DropCause::TtlExpired);
        s.count_drop(DropCause::QueueWiped);
        s.count_drop(DropCause::NoRoute);
        assert_eq!(s.drop_no_route, 2);
        assert_eq!(s.drops(), 5);
        let mut t = TrafficStats::default();
        t.merge(&s);
        assert_eq!(t, s);
    }

    #[test]
    fn service_delay_draws_only_with_jitter() {
        let cfg = TxQueueConfig {
            service_jitter: SimDuration::ZERO,
            ..TxQueueConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(5);
        let pristine = rng.clone();
        assert_eq!(cfg.service_delay(&mut rng), cfg.service_interval);
        assert_eq!(rng, pristine, "zero jitter must not consume randomness");

        let jittered = TxQueueConfig::default();
        let d = jittered.service_delay(&mut rng);
        assert!(d >= jittered.service_interval);
        assert!(d < jittered.service_interval + jittered.service_jitter);
        assert_ne!(rng, pristine, "jitter consumes exactly the traffic stream");
    }
}
