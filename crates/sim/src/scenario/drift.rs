//! Gauss–Markov link-weight drift.

use qolsr_graph::{DynamicTopology, NodeId, WorldEvent};
use qolsr_metrics::{Bandwidth, Delay, Energy, LinkQos};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{apply_recorded, sample_standard_normal, MobilityModel};

/// First-order Gauss–Markov drift of every live link's QoS components:
/// per tick, each of bandwidth, delay and energy moves as
///
/// ```text
/// w' = α·w + (1 − α)·μ + σ·√(1 − α²)·z,   z ~ N(0, 1)
/// ```
///
/// with `μ` the midpoint of `bounds` and the result rounded and clamped
/// into `bounds`. `α` close to 1 gives slowly wandering weights (temporal
/// correlation), `α = 0` gives memoryless redraws around `μ`.
#[derive(Debug, Clone)]
pub struct GaussMarkovDrift {
    tick: SimDuration,
    alpha: f64,
    bounds: (u64, u64),
    sigma: f64,
    next: SimTime,
    /// Edge snapshot reused across ticks (capacity retained) — drifting
    /// mutates the world's labels mid-iteration, so each tick works from
    /// a copy.
    edges: Vec<(u32, u32, LinkQos)>,
}

impl GaussMarkovDrift {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero, `alpha` is outside `[0, 1]`, or the
    /// bounds are empty or start at zero (a zero weight means "no link"
    /// under concave metrics).
    pub fn new(tick: SimDuration, alpha: f64, bounds: (u64, u64), sigma: f64) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(
            bounds.0 > 0 && bounds.0 <= bounds.1,
            "bounds must be positive and ordered"
        );
        Self {
            tick,
            alpha,
            bounds,
            sigma,
            next: SimTime::ZERO,
            edges: Vec::new(),
        }
    }

    fn drift_component(&self, w: u64, rng: &mut SimRng) -> u64 {
        let mu = (self.bounds.0 + self.bounds.1) as f64 / 2.0;
        let z = sample_standard_normal(rng);
        let drifted = self.alpha * w as f64
            + (1.0 - self.alpha) * mu
            + self.sigma * (1.0 - self.alpha * self.alpha).sqrt() * z;
        (drifted.round() as i64).clamp(self.bounds.0 as i64, self.bounds.1 as i64) as u64
    }
}

impl MobilityModel for GaussMarkovDrift {
    fn name(&self) -> &'static str {
        "gauss-markov-drift"
    }

    fn init(&mut self, _world: &DynamicTopology, _rng: &mut SimRng) {
        self.next = SimTime::ZERO + self.tick;
    }

    fn next_activation(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn activate(
        &mut self,
        now: SimTime,
        world: &mut DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        edges.extend(world.graph().edges());
        for &(a, b, qos) in &edges {
            let drifted = LinkQos::with_energy(
                Bandwidth(self.drift_component(qos.bandwidth.value(), rng)),
                Delay(self.drift_component(qos.delay.value(), rng)),
                Energy(self.drift_component(qos.energy.value(), rng)),
            );
            if drifted != qos {
                apply_recorded(
                    world,
                    &mut events,
                    WorldEvent::QosChange {
                        a: NodeId(a),
                        b: NodeId(b),
                        qos: drifted,
                    },
                );
            }
        }
        self.edges = edges;
        self.next = now + self.tick;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use qolsr_graph::{Point2, TopologyBuilder};

    fn line3() -> qolsr_graph::Topology {
        let mut b = TopologyBuilder::new(10.0);
        let n0 = b.add_node(Point2::new(0.0, 0.0));
        let n1 = b.add_node(Point2::new(5.0, 0.0));
        let n2 = b.add_node(Point2::new(10.0, 0.0));
        b.link(n0, n1, LinkQos::uniform(5)).unwrap();
        b.link(n1, n2, LinkQos::uniform(5)).unwrap();
        b.build()
    }

    #[test]
    fn drift_changes_weights_within_bounds() {
        let s = ScenarioBuilder::new(&line3(), 7)
            .with(GaussMarkovDrift::new(
                SimDuration::from_secs(1),
                0.7,
                (1, 10),
                2.0,
            ))
            .generate(SimDuration::from_secs(30));
        let summary = s.summary();
        assert!(summary.qos_changes > 0, "no drift happened");
        assert_eq!(summary.link_ups + summary.link_downs, 0, "drift only");
        for te in s.events() {
            if let WorldEvent::QosChange { qos, .. } = te.event {
                for v in [qos.bandwidth.value(), qos.delay.value(), qos.energy.value()] {
                    assert!((1..=10).contains(&v), "component {v} out of bounds");
                }
            }
        }
    }

    #[test]
    fn alpha_one_freezes_weights() {
        // α = 1 keeps w' = w: no events at all.
        let s = ScenarioBuilder::new(&line3(), 8)
            .with(GaussMarkovDrift::new(
                SimDuration::from_secs(1),
                1.0,
                (1, 10),
                5.0,
            ))
            .generate(SimDuration::from_secs(10));
        assert!(
            s.is_empty(),
            "alpha=1 must freeze weights: {:?}",
            s.summary()
        );
    }
}
