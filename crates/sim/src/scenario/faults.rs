//! Fault-injection scenario models: scheduled partitions, correlated
//! crash storms, and regional blackouts.
//!
//! These compose with the benign models (motion, churn, drift) through
//! the same [`ScenarioBuilder`](super::ScenarioBuilder) pipeline, so an
//! adversarial world is still a pure function of its generation seed.

use qolsr_graph::{DynamicTopology, NodeId, WorldEvent};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{apply_recorded, sample_exponential, MobilityModel};

/// One scheduled network partition: at `at` the world splits along the
/// vertical line `x = cut` ([`WorldEvent::Partition`]); `heal_after`
/// later the cut heals ([`WorldEvent::Heal`]). Deterministic — the model
/// draws no randomness, so it can be replayed against analytic
/// expectations (the fault experiments key their recovery clocks off
/// these two instants).
#[derive(Debug, Clone)]
pub struct PartitionWindow {
    at: SimTime,
    cut: f64,
    heal_at: SimTime,
    /// 0 = partition pending, 1 = heal pending, 2 = done.
    phase: u8,
}

impl PartitionWindow {
    /// Creates the model: partition along `x = cut` at `at` (from
    /// scenario start), healing `heal_after` later.
    ///
    /// # Panics
    ///
    /// Panics if `cut` is not finite.
    pub fn new(at: SimDuration, cut: f64, heal_after: SimDuration) -> Self {
        assert!(cut.is_finite(), "partition cut must be finite");
        let at = SimTime::ZERO + at;
        Self {
            at,
            cut,
            heal_at: at + heal_after,
            phase: 0,
        }
    }

    /// The instant the partition activates.
    pub fn partition_at(&self) -> SimTime {
        self.at
    }

    /// The instant the partition heals.
    pub fn heal_at(&self) -> SimTime {
        self.heal_at
    }
}

impl MobilityModel for PartitionWindow {
    fn name(&self) -> &'static str {
        "partition-window"
    }

    fn next_activation(&self) -> Option<SimTime> {
        match self.phase {
            0 => Some(self.at),
            1 => Some(self.heal_at),
            _ => None,
        }
    }

    fn activate(
        &mut self,
        _now: SimTime,
        world: &mut DynamicTopology,
        _rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        match self.phase {
            0 => {
                apply_recorded(world, &mut events, WorldEvent::Partition { cut: self.cut });
                self.phase = 1;
            }
            1 => {
                apply_recorded(world, &mut events, WorldEvent::Heal);
                self.phase = 2;
            }
            _ => {}
        }
        events
    }
}

/// Correlated crash storms as a Poisson process: storms arrive
/// network-wide at `storm_rate` per second, and each storm instantly
/// reboots every active node independently with probability
/// `crash_ppm / 10⁶` ([`WorldEvent::Crash`] — full state wipe, no
/// downtime). A storm that draws no victim crashes one uniform active
/// node instead, so every storm bites.
#[derive(Debug, Clone)]
pub struct CrashStorm {
    storm_rate: f64,
    crash_ppm: u32,
    next_storm: Option<SimTime>,
}

impl CrashStorm {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `storm_rate` is not in `(0, 10⁴]` storms per second
    /// (the same inter-arrival truncation bound as
    /// [`PoissonChurn`](super::PoissonChurn)), or if `crash_ppm`
    /// exceeds `1_000_000`.
    pub fn new(storm_rate: f64, crash_ppm: u32) -> Self {
        assert!(
            storm_rate > 0.0 && storm_rate <= 1e4,
            "storm rate must be in (0, 1e4] per second"
        );
        assert!(crash_ppm <= 1_000_000, "crash_ppm is a probability in ppm");
        Self {
            storm_rate,
            crash_ppm,
            next_storm: None,
        }
    }

    fn mean_interarrival(&self) -> SimDuration {
        SimDuration::from_micros((1e6 / self.storm_rate) as u64)
    }
}

impl MobilityModel for CrashStorm {
    fn name(&self) -> &'static str {
        "crash-storm"
    }

    fn init(&mut self, _world: &DynamicTopology, rng: &mut SimRng) {
        self.next_storm = Some(SimTime::ZERO + sample_exponential(self.mean_interarrival(), rng));
    }

    fn next_activation(&self) -> Option<SimTime> {
        self.next_storm
    }

    fn activate(
        &mut self,
        now: SimTime,
        world: &mut DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        if self.next_storm == Some(now) {
            let active: Vec<NodeId> = world.nodes().filter(|&n| world.is_active(n)).collect();
            let p = f64::from(self.crash_ppm) / 1e6;
            let mut hit = false;
            // Ascending node-id order keeps the draw sequence (and so
            // the whole schedule) independent of world representation.
            for &node in &active {
                if rng.next_f64() < p {
                    apply_recorded(world, &mut events, WorldEvent::Crash { node });
                    hit = true;
                }
            }
            if !hit && !active.is_empty() {
                let victim = active[rng.next_below(active.len() as u64) as usize];
                apply_recorded(world, &mut events, WorldEvent::Crash { node: victim });
            }
            self.next_storm = Some(now + sample_exponential(self.mean_interarrival(), rng));
        }
        events
    }
}

/// A one-shot regional blackout: at `at`, every active node strictly
/// west of `x = cut` (or east, with [`RegionalBlackout::east`])
/// crash-reboots simultaneously — the worst-case correlated failure a
/// shared power domain produces. Deterministic (no randomness).
#[derive(Debug, Clone)]
pub struct RegionalBlackout {
    at: Option<SimTime>,
    cut: f64,
    west: bool,
}

impl RegionalBlackout {
    /// Creates the model: at `at` (from scenario start) crash every
    /// active node with position `x < cut`.
    ///
    /// # Panics
    ///
    /// Panics if `cut` is not finite.
    pub fn new(at: SimDuration, cut: f64) -> Self {
        assert!(cut.is_finite(), "blackout cut must be finite");
        Self {
            at: Some(SimTime::ZERO + at),
            cut,
            west: true,
        }
    }

    /// Blacks out the east side (`x >= cut`) instead.
    pub fn east(mut self) -> Self {
        self.west = false;
        self
    }
}

impl MobilityModel for RegionalBlackout {
    fn name(&self) -> &'static str {
        "regional-blackout"
    }

    fn next_activation(&self) -> Option<SimTime> {
        self.at
    }

    fn activate(
        &mut self,
        _now: SimTime,
        world: &mut DynamicTopology,
        _rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        let victims: Vec<NodeId> = world
            .nodes()
            .filter(|&n| world.is_active(n) && ((world.position(n).x < self.cut) == self.west))
            .collect();
        for node in victims {
            apply_recorded(world, &mut events, WorldEvent::Crash { node });
        }
        self.at = None;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use qolsr_graph::{Point2, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    fn line6() -> qolsr_graph::Topology {
        let mut b = TopologyBuilder::new(15.0);
        let ids: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(Point2::new(i as f64 * 10.0, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], LinkQos::uniform(2)).unwrap();
        }
        b.build()
    }

    #[test]
    fn partition_window_emits_cut_then_heal() {
        let s = ScenarioBuilder::new(&line6(), 1)
            .with(PartitionWindow::new(
                SimDuration::from_secs(5),
                25.0,
                SimDuration::from_secs(10),
            ))
            .generate(SimDuration::from_secs(60));
        assert_eq!(s.len(), 2);
        let evs = s.events();
        assert_eq!(evs[0].at, SimTime::ZERO + SimDuration::from_secs(5));
        assert!(matches!(evs[0].event, WorldEvent::Partition { cut } if cut == 25.0));
        assert_eq!(evs[1].at, SimTime::ZERO + SimDuration::from_secs(15));
        assert!(matches!(evs[1].event, WorldEvent::Heal));
        let sum = s.summary();
        assert_eq!((sum.partitions, sum.heals), (1, 1));
    }

    #[test]
    fn partition_past_horizon_never_heals_in_schedule() {
        let s = ScenarioBuilder::new(&line6(), 1)
            .with(PartitionWindow::new(
                SimDuration::from_secs(5),
                25.0,
                SimDuration::from_secs(100),
            ))
            .generate(SimDuration::from_secs(30));
        assert_eq!(s.summary().partitions, 1);
        assert_eq!(s.summary().heals, 0);
    }

    #[test]
    fn crash_storms_are_seeded_and_always_bite() {
        let make = |seed| {
            ScenarioBuilder::new(&line6(), seed)
                .with(CrashStorm::new(0.5, 300_000))
                .generate(SimDuration::from_secs(60))
        };
        let s = make(7);
        assert!(s.summary().crashes > 0, "storms must crash nodes");
        assert_eq!(s.events(), make(7).events(), "seeded replay");
        // Even a vanishing per-node probability still crashes one
        // victim per storm.
        let tiny = ScenarioBuilder::new(&line6(), 3)
            .with(CrashStorm::new(1.0, 0))
            .generate(SimDuration::from_secs(30));
        let storms: Vec<SimTime> = tiny.events().iter().map(|te| te.at).collect();
        assert_eq!(
            tiny.summary().crashes as usize,
            storms.len(),
            "exactly one victim per storm at p = 0"
        );
        assert!(!storms.is_empty());
    }

    #[test]
    fn regional_blackout_crashes_exactly_one_side() {
        let s = ScenarioBuilder::new(&line6(), 1)
            .with(RegionalBlackout::new(SimDuration::from_secs(2), 25.0))
            .generate(SimDuration::from_secs(10));
        // Nodes at x = 0, 10, 20 are west of the cut.
        let crashed: Vec<NodeId> = s
            .events()
            .iter()
            .filter_map(|te| match te.event {
                WorldEvent::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        assert_eq!(crashed, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let east = ScenarioBuilder::new(&line6(), 1)
            .with(RegionalBlackout::new(SimDuration::from_secs(2), 25.0).east())
            .generate(SimDuration::from_secs(10));
        assert_eq!(east.summary().crashes, 3);
    }
}
