//! Dynamic-topology scenarios: reusable mobility and churn models that
//! compile down to a deterministic schedule of [`WorldEvent`]s.
//!
//! The paper evaluates on static Poisson deployments; the OLSR-based QoS
//! evaluations it motivates (mobile ad-hoc networks) stress protocols
//! with motion and churn. This module closes that gap without giving up
//! reproducibility: a [`ScenarioBuilder`] composes [`MobilityModel`]s —
//! [`RandomWaypoint`] motion with radius-based link recomputation,
//! [`PoissonChurn`] node leave/rejoin, [`GaussMarkovDrift`] link-weight
//! drift — and *pre-generates* the world's entire evolution from a seed,
//! independent of anything the protocol under test does. The resulting
//! [`Scenario`] installs into a [`Simulator`], whose event queue
//! interleaves the world events with actor events in `(time, sequence)`
//! order.
//!
//! Because generation is offline and purely seed-driven, two runs with
//! equal seeds see byte-identical world evolutions regardless of the
//! protocol, the host, or how many worker threads an experiment harness
//! spreads runs over.
//!
//! # Examples
//!
//! ```
//! use qolsr_graph::deploy::{deploy, Deployment, UniformWeights};
//! use qolsr_sim::scenario::{RandomWaypoint, ScenarioBuilder};
//! use qolsr_sim::{SimDuration, SimRng};
//!
//! let mut rng = SimRng::seed_from_u64(7);
//! let deployment = Deployment { width: 300.0, height: 300.0, radius: 100.0, mean_degree: 8.0 };
//! let weights = UniformWeights::paper_defaults();
//! let topo = deploy(&deployment, &weights, &mut rng);
//!
//! let scenario = ScenarioBuilder::new(&topo, 42)
//!     .with(RandomWaypoint::new(
//!         (300.0, 300.0),
//!         SimDuration::from_secs(1),
//!         (5.0, 15.0),
//!         SimDuration::from_secs(2),
//!         weights,
//!     ))
//!     .generate(SimDuration::from_secs(10));
//! // Same seed, same world evolution.
//! let again = ScenarioBuilder::new(&topo, 42)
//!     .with(RandomWaypoint::new(
//!         (300.0, 300.0),
//!         SimDuration::from_secs(1),
//!         (5.0, 15.0),
//!         SimDuration::from_secs(2),
//!         weights,
//!     ))
//!     .generate(SimDuration::from_secs(10));
//! assert_eq!(scenario.events(), again.events());
//! ```

mod churn;
mod drift;
mod faults;
mod waypoint;

pub use churn::PoissonChurn;
pub use drift::GaussMarkovDrift;
pub use faults::{CrashStorm, PartitionWindow, RegionalBlackout};
pub use waypoint::{RandomWaypoint, WaypointSampling};

use qolsr_graph::{DynamicTopology, Topology, WorldEvent};

use crate::engine::{Actor, Simulator};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A world event stamped with its application time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event applies.
    pub at: SimTime,
    /// The event.
    pub event: WorldEvent,
}

/// Per-kind event counts of a generated scenario (reporting/debugging).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSummary {
    /// Links that came up.
    pub link_ups: u64,
    /// Links that went down.
    pub link_downs: u64,
    /// Link-label drifts.
    pub qos_changes: u64,
    /// Node motion steps.
    pub moves: u64,
    /// Node (re)joins.
    pub joins: u64,
    /// Node departures.
    pub leaves: u64,
    /// Crash-reboot faults.
    pub crashes: u64,
    /// Partition cuts activated.
    pub partitions: u64,
    /// Partition heals.
    pub heals: u64,
}

/// A generated, immutable schedule of world events over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    events: Vec<TimedEvent>,
    horizon: SimDuration,
}

impl Scenario {
    /// The generated events, ascending by time (ties in generation order).
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the scenario schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The horizon the scenario was generated for.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Per-kind event counts.
    pub fn summary(&self) -> ScenarioSummary {
        let mut s = ScenarioSummary::default();
        for te in &self.events {
            match te.event {
                WorldEvent::LinkUp { .. } => s.link_ups += 1,
                WorldEvent::LinkDown { .. } => s.link_downs += 1,
                WorldEvent::QosChange { .. } => s.qos_changes += 1,
                WorldEvent::Move { .. } => s.moves += 1,
                WorldEvent::Join { .. } => s.joins += 1,
                WorldEvent::Leave { .. } => s.leaves += 1,
                WorldEvent::Crash { .. } => s.crashes += 1,
                WorldEvent::Partition { .. } => s.partitions += 1,
                WorldEvent::Heal => s.heals += 1,
            }
        }
        s
    }

    /// Schedules every event into `sim`'s world-event stream, starting at
    /// virtual time zero.
    pub fn install<A: Actor>(&self, sim: &mut Simulator<A>) {
        self.install_at(sim, SimTime::ZERO);
    }

    /// Schedules every event shifted to begin at `start` — the standard
    /// "warm up statically, then let the world move" pattern.
    pub fn install_at<A: Actor>(&self, sim: &mut Simulator<A>, start: SimTime) {
        let offset = start - SimTime::ZERO;
        sim.schedule_world_events(self.events.iter().map(|te| (te.at + offset, te.event)));
    }
}

/// How a scenario model discovers the nodes within radio radius of a
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborScan {
    /// Query the world's incremental [`SpatialGrid`] — O(k) per query
    /// for `k` nodes in range; the default and the only path that scales
    /// past a few thousand nodes.
    ///
    /// [`SpatialGrid`]: qolsr_graph::SpatialGrid
    #[default]
    Grid,
    /// Brute-force scan over all candidate pairs — the O(n²) reference
    /// implementation the grid path is differentially tested against
    /// (`tests/scenario_determinism.rs` asserts byte-identical event
    /// traces). Keep for tests; never for large worlds.
    Naive,
}

/// A generator of world events, driven by the [`ScenarioBuilder`].
///
/// Models are *activated* at the times they announce; on activation they
/// inspect the evolving scratch world (positions, links, activity),
/// apply the events happening at that instant directly to it (via
/// [`apply_recorded`], which drops no-ops), and return the applied
/// events for the schedule. Applying immediately is what lets models
/// query the world's spatial index against *current* positions, and
/// later activations — of the same model or of others — see their
/// effects.
pub trait MobilityModel {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called once before generation starts, with the initial world.
    fn init(&mut self, world: &DynamicTopology, rng: &mut SimRng) {
        let _ = (world, rng);
    }

    /// The time of this model's next activation, or `None` when done.
    fn next_activation(&self) -> Option<SimTime>;

    /// Applies this model's events at time `now` to `world`, returns
    /// them in application order, and advances the model's internal
    /// clock. Must only be called at the announced activation time, and
    /// must only return events that actually changed the world.
    fn activate(
        &mut self,
        now: SimTime,
        world: &mut DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent>;
}

/// Applies `ev` to `world`; if it changed anything, records it in
/// `events`. The one helper every [`MobilityModel`] — in-tree or
/// external — routes its output through, so "returned ⇔ applied and not
/// a no-op" holds by construction. Events returned from
/// [`MobilityModel::activate`] without having been applied corrupt the
/// scratch world (the builder does **not** apply them again).
pub fn apply_recorded(world: &mut DynamicTopology, events: &mut Vec<WorldEvent>, ev: WorldEvent) {
    if world.apply(&ev) {
        events.push(ev);
    }
}

/// Composes [`MobilityModel`]s into a deterministic [`Scenario`].
///
/// Generation is a discrete-event loop of its own: the earliest-activating
/// model runs (ties resolve in registration order), applies its events to
/// a scratch copy of the world — which keeps the world's spatial index
/// current for the model's own radius queries — and the loop repeats
/// until the horizon. No-op events (e.g. a link-up the world already has)
/// never enter the schedule.
pub struct ScenarioBuilder {
    world: DynamicTopology,
    models: Vec<Box<dyn MobilityModel>>,
    rng: SimRng,
}

impl ScenarioBuilder {
    /// Starts a builder over the initial topology with a generation seed.
    pub fn new(initial: &Topology, seed: u64) -> Self {
        Self {
            world: DynamicTopology::new(initial),
            models: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x5CE9_A210_F00D_CAFE),
        }
    }

    /// Adds a model. Registration order breaks activation-time ties and
    /// is part of the deterministic contract.
    pub fn with(mut self, model: impl MobilityModel + 'static) -> Self {
        self.models.push(Box::new(model));
        self
    }

    /// Generates the schedule for `horizon` of virtual time.
    pub fn generate(mut self, horizon: SimDuration) -> Scenario {
        let end = SimTime::ZERO + horizon;
        for model in &mut self.models {
            model.init(&self.world, &mut self.rng);
        }
        let mut events: Vec<TimedEvent> = Vec::new();
        loop {
            let next = self
                .models
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.next_activation().map(|t| (t, i)))
                .min();
            let Some((at, idx)) = next else { break };
            if at > end {
                break;
            }
            let produced = self.models[idx].activate(at, &mut self.world, &mut self.rng);
            events.extend(produced.into_iter().map(|event| TimedEvent { at, event }));
        }
        Scenario { events, horizon }
    }
}

/// Draws `Exp(mean)` virtual time via inverse transform (`1 - u` avoids
/// `ln(0)`), clamped to at least one microsecond so inter-arrival draws
/// always advance the virtual clock (a zero draw would re-activate a
/// model at the same instant forever).
pub(crate) fn sample_exponential(mean: SimDuration, rng: &mut SimRng) -> SimDuration {
    let u = rng.next_f64();
    let secs = -(1.0 - u).ln() * mean.as_secs_f64();
    SimDuration::from_micros(((secs * 1e6) as u64).max(1))
}

/// Draws a standard normal via Box–Muller.
pub(crate) fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = 1.0 - rng.next_f64(); // (0, 1]
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qolsr_graph::deploy::UniformWeights;
    use qolsr_graph::{NodeId, Point2, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    fn grid4() -> Topology {
        let mut b = TopologyBuilder::new(12.0);
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point2::new((i % 2) as f64 * 10.0, (i / 2) as f64 * 10.0)))
            .collect();
        for (a, c) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.link(ids[a], ids[c], LinkQos::uniform(3)).unwrap();
        }
        b.build()
    }

    #[test]
    fn empty_builder_generates_nothing() {
        let s = ScenarioBuilder::new(&grid4(), 1).generate(SimDuration::from_secs(10));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.summary(), ScenarioSummary::default());
    }

    #[test]
    fn churn_scenario_is_seed_deterministic() {
        let make = |seed| {
            ScenarioBuilder::new(&grid4(), seed)
                .with(PoissonChurn::new(
                    0.5,
                    SimDuration::from_secs(3),
                    UniformWeights::paper_defaults(),
                ))
                .generate(SimDuration::from_secs(30))
        };
        assert_eq!(make(9).events(), make(9).events());
        assert_ne!(
            make(9).events(),
            make(10).events(),
            "different seeds should differ"
        );
    }

    #[test]
    fn events_are_time_ordered() {
        let s = ScenarioBuilder::new(&grid4(), 3)
            .with(PoissonChurn::new(
                1.0,
                SimDuration::from_secs(2),
                UniformWeights::paper_defaults(),
            ))
            .with(GaussMarkovDrift::new(
                SimDuration::from_secs(1),
                0.8,
                (1, 10),
                1.5,
            ))
            .generate(SimDuration::from_secs(20));
        assert!(!s.is_empty());
        for pair in s.events().windows(2) {
            assert!(pair[0].at <= pair[1].at, "events out of order");
        }
    }

    #[test]
    fn exponential_sampling_is_positive_with_sane_mean() {
        let mut rng = SimRng::seed_from_u64(4);
        let mean = SimDuration::from_secs(5);
        let n = 2_000;
        let total: u64 = (0..n)
            .map(|_| sample_exponential(mean, &mut rng).as_micros())
            .sum();
        let empirical = total as f64 / n as f64 / 1e6;
        assert!(
            (empirical - 5.0).abs() < 0.5,
            "empirical mean {empirical} too far from 5"
        );
    }

    #[test]
    fn normal_sampling_is_roughly_standard() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 4_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "variance {var}");
    }
}
