//! Random-waypoint mobility with radius-based link recomputation.

use qolsr_graph::deploy::UniformWeights;
use qolsr_graph::{DynamicTopology, NodeId, Point2, WorldEvent};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{apply_recorded, MobilityModel, NeighborScan};

#[derive(Debug, Clone, Copy)]
struct NodeMotion {
    target: Point2,
    /// Units of distance per second; zero while paused.
    speed: f64,
    pause_until: SimTime,
}

/// How waypoints are drawn from the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaypointSampling {
    /// The classic model: waypoints uniform over the field. Straight
    /// legs between uniform waypoints cross the middle of the field
    /// disproportionately often, so the time-averaged node density peaks
    /// at the center — the well-known RWP center-density bias.
    #[default]
    Uniform,
    /// Border-aware rejection sampling that damps the center bias: a
    /// uniform candidate at Chebyshev border-closeness `c ∈ [0, 1]`
    /// (0 at the field center, 1 on the border) is accepted with
    /// probability `c`, pushing waypoints — and with them the legs that
    /// would otherwise pile up mid-field — outward. Draws stay inside
    /// the field, so field containment is unchanged.
    BorderAware,
}

/// The classic random-waypoint model: every node picks a waypoint in the
/// field (see [`WaypointSampling`]) and a uniform speed, travels there in
/// straight-line steps of one `tick`, pauses, and repeats. After each
/// tick the unit-disk link set is re-synced against the new positions:
/// links that left the radius go down, pairs that entered it come up with
/// freshly drawn QoS labels (links that persist keep theirs — drift is
/// [`GaussMarkovDrift`]'s job).
///
/// Link re-sync runs per *dirty* node — nodes that moved this tick or
/// became active since the last one — through the world's shared
/// [`SpatialGrid`] index, O(moved · k) instead of the all-pairs O(n²)
/// scan, which [`NeighborScan::Naive`] keeps available as the reference
/// the grid path is differentially tested against.
///
/// [`GaussMarkovDrift`]: super::GaussMarkovDrift
/// [`SpatialGrid`]: qolsr_graph::SpatialGrid
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    field: (f64, f64),
    tick: SimDuration,
    speed: (f64, f64),
    pause: SimDuration,
    weights: UniformWeights,
    sampling: WaypointSampling,
    scan: NeighborScan,
    next: SimTime,
    motion: Vec<NodeMotion>,
    /// Activity as of the last activation; a false→true flip marks the
    /// node dirty so a rejoin by a model that did not relink it still
    /// gets its radius links re-synced.
    active: Vec<bool>,
    /// `DynamicTopology::position_epoch` per node as of the end of the
    /// last activation; a change marks the node dirty, so moves applied
    /// by *other* composed models between activations get their radius
    /// links re-synced too (the grid path's consistency invariant does
    /// not depend on this model being the only mover).
    pos_epochs: Vec<u64>,
    /// The first activation re-syncs every pair (the initial topology is
    /// not required to match the radius relation); later ticks only look
    /// at dirty nodes.
    full_sync: bool,
    /// Per-min-endpoint candidate-pair buckets, kept across ticks so the
    /// grid path allocates nothing in steady state. Always left empty
    /// between activations (capacity retained).
    buckets: Vec<Vec<u32>>,
}

impl RandomWaypoint {
    /// Creates the model.
    ///
    /// * `field` — width × height the waypoints are drawn from;
    /// * `tick` — motion/recomputation interval;
    /// * `speed` — uniform `[min, max)` node speed in distance units per
    ///   second;
    /// * `pause` — rest time at each waypoint;
    /// * `weights` — sampler for the labels of newly appearing links.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero, the field is empty, or the speed range
    /// is invalid.
    pub fn new(
        field: (f64, f64),
        tick: SimDuration,
        speed: (f64, f64),
        pause: SimDuration,
        weights: UniformWeights,
    ) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        assert!(field.0 > 0.0 && field.1 > 0.0, "field must be non-empty");
        assert!(
            speed.0 > 0.0 && speed.0 <= speed.1,
            "speed range must be positive"
        );
        Self {
            field,
            tick,
            speed,
            pause,
            weights,
            sampling: WaypointSampling::Uniform,
            scan: NeighborScan::Grid,
            next: SimTime::ZERO,
            motion: Vec::new(),
            active: Vec::new(),
            pos_epochs: Vec::new(),
            full_sync: true,
            buckets: Vec::new(),
        }
    }

    /// Selects the waypoint distribution (default: uniform).
    pub fn with_sampling(mut self, sampling: WaypointSampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Selects the link re-sync path (default: the grid; the naive path
    /// exists for differential tests).
    pub fn with_scan(mut self, scan: NeighborScan) -> Self {
        self.scan = scan;
        self
    }

    fn draw_waypoint(&self, rng: &mut SimRng) -> Point2 {
        let (w, h) = self.field;
        let mut p = Point2::new(rng.next_f64() * w, rng.next_f64() * h);
        if self.sampling == WaypointSampling::BorderAware {
            // Mean acceptance is E[max(|U|,|V|)] = 2/3, so 16 rounds
            // leave a < 10⁻⁷ residue of uniform draws — bounded work per
            // waypoint.
            for _ in 0..16 {
                let cx = (2.0 * p.x / w - 1.0).abs();
                let cy = (2.0 * p.y / h - 1.0).abs();
                if rng.next_f64() <= cx.max(cy) {
                    break;
                }
                p = Point2::new(rng.next_f64() * w, rng.next_f64() * h);
            }
        }
        p
    }

    fn draw_speed(&self, rng: &mut SimRng) -> f64 {
        self.speed.0 + rng.next_f64() * (self.speed.1 - self.speed.0)
    }

    /// Brings the link state of the active pair `a—b` in line with the
    /// radius relation, drawing a fresh label if the pair just came into
    /// range.
    fn sync_pair(
        &self,
        a: NodeId,
        b: NodeId,
        r_sq: f64,
        world: &mut DynamicTopology,
        events: &mut Vec<WorldEvent>,
        rng: &mut SimRng,
    ) {
        let in_range = world.position(a).distance_sq(world.position(b)) <= r_sq;
        let linked = world.has_link(a, b);
        if in_range && !linked {
            let qos = self.weights.sample(rng);
            apply_recorded(world, events, WorldEvent::LinkUp { a, b, qos });
        } else if !in_range && linked {
            apply_recorded(world, events, WorldEvent::LinkDown { a, b });
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn name(&self) -> &'static str {
        "random-waypoint"
    }

    fn init(&mut self, world: &DynamicTopology, rng: &mut SimRng) {
        self.motion = (0..world.len())
            .map(|_| NodeMotion {
                target: self.draw_waypoint(rng),
                speed: self.draw_speed(rng),
                pause_until: SimTime::ZERO,
            })
            .collect();
        self.active = world.nodes().map(|n| world.is_active(n)).collect();
        self.pos_epochs = world.nodes().map(|n| world.position_epoch(n)).collect();
        self.full_sync = true;
        // The grid path tags bucketed node ids with two origin bits.
        assert!(
            world.len() < (1 << 30),
            "grid scan packs node ids into 30 bits"
        );
        self.buckets = vec![Vec::new(); world.len()];
        // First motion step one tick in.
        self.next = SimTime::ZERO + self.tick;
    }

    fn next_activation(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn activate(
        &mut self,
        now: SimTime,
        world: &mut DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        let dt = self.tick.as_secs_f64();
        let n = world.len();

        // Nodes whose radius relations may have changed this tick.
        let mut dirty: Vec<u32> = Vec::new();
        if self.full_sync {
            self.full_sync = false;
            dirty.extend(0..n as u32);
        }

        // Move every node (including inactive ones: a powered-off device
        // keeps travelling) toward its waypoint.
        for i in 0..n {
            let node = NodeId(i as u32);
            let active_now = world.is_active(node);
            if active_now && !self.active[i] {
                dirty.push(i as u32);
            }
            self.active[i] = active_now;
            // Moved by another composed model since our last activation.
            if world.position_epoch(node) != self.pos_epochs[i] {
                dirty.push(i as u32);
            }

            let mut m = self.motion[i];
            if now < m.pause_until {
                continue;
            }
            let pos = world.position(node);
            let step = m.speed * dt;
            let dist = pos.distance(m.target);
            let new_pos = if dist <= step {
                // Arrived: pause here, then head for a fresh waypoint.
                m.pause_until = now + self.pause;
                let arrived = m.target;
                m.target = self.draw_waypoint(rng);
                m.speed = self.draw_speed(rng);
                arrived
            } else {
                Point2::new(
                    pos.x + (m.target.x - pos.x) / dist * step,
                    pos.y + (m.target.y - pos.y) / dist * step,
                )
            };
            self.motion[i] = m;
            if new_pos != pos {
                apply_recorded(world, &mut events, WorldEvent::Move { node, to: new_pos });
                dirty.push(i as u32);
            }
        }
        // Snapshot after our own moves: only *later* external moves
        // count as dirty next tick.
        for (i, slot) in self.pos_epochs.iter_mut().enumerate() {
            *slot = world.position_epoch(NodeId(i as u32));
        }

        // Re-sync the unit-disk link set over the new positions. Both
        // paths visit candidate pairs in ascending (a, b) order, so they
        // draw link labels in the same sequence — the basis of the
        // grid ≡ naive trace equality the test suite pins.
        let r = world.radius();
        let r_sq = r * r;
        match self.scan {
            NeighborScan::Naive => {
                for a in 0..n {
                    let na = NodeId(a as u32);
                    if !world.is_active(na) {
                        continue;
                    }
                    for b in (a + 1)..n {
                        let nb = NodeId(b as u32);
                        if !world.is_active(nb) {
                            continue;
                        }
                        self.sync_pair(na, nb, r_sq, world, &mut events, rng);
                    }
                }
            }
            NeighborScan::Grid => {
                // Only pairs touching a dirty node can have changed:
                // every other active pair was radius-consistent after the
                // previous sync and neither endpoint moved since.
                //
                // Candidate pairs bucket under their smaller endpoint,
                // tagged with where they came from: the adjacency pass
                // (LINKED — potential downs) or the grid pass (IN_RANGE —
                // potential ups). After a per-bucket sort, merged flags
                // decide each pair's event with no further lookups —
                // stable pairs (both flags) cost nothing beyond the
                // merge. Walking buckets in ascending order keeps the
                // label-draw sequence identical to the naive scan.
                const LINKED: u32 = 1;
                const IN_RANGE: u32 = 2;
                let mut in_range = Vec::new();
                for &d in &dirty {
                    let nd = NodeId(d);
                    for (m, _) in world.neighbors(nd) {
                        let (a, b) = (d.min(m.0), d.max(m.0));
                        self.buckets[a as usize].push(b << 2 | LINKED);
                    }
                    world.nodes_within_into(world.position(nd), r, &mut in_range);
                    for &m in &in_range {
                        if m != nd {
                            let (a, b) = (d.min(m.0), d.max(m.0));
                            self.buckets[a as usize].push(b << 2 | IN_RANGE);
                        }
                    }
                }
                for a in 0..n {
                    if self.buckets[a].is_empty() {
                        continue;
                    }
                    let mut bucket = std::mem::take(&mut self.buckets[a]);
                    let na = NodeId(a as u32);
                    if world.is_active(na) {
                        bucket.sort_unstable();
                        let mut i = 0;
                        while i < bucket.len() {
                            let b = bucket[i] >> 2;
                            let mut flags = bucket[i] & 3;
                            i += 1;
                            while i < bucket.len() && bucket[i] >> 2 == b {
                                flags |= bucket[i] & 3;
                                i += 1;
                            }
                            let nb = NodeId(b);
                            if !world.is_active(nb) {
                                continue;
                            }
                            if flags == IN_RANGE {
                                let qos = self.weights.sample(rng);
                                apply_recorded(
                                    world,
                                    &mut events,
                                    WorldEvent::LinkUp { a: na, b: nb, qos },
                                );
                            } else if flags == LINKED {
                                apply_recorded(
                                    world,
                                    &mut events,
                                    WorldEvent::LinkDown { a: na, b: nb },
                                );
                            }
                            // Both flags: linked and still in range.
                        }
                    }
                    bucket.clear();
                    self.buckets[a] = bucket;
                }
            }
        }

        self.next = now + self.tick;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use qolsr_graph::deploy::{deploy, Deployment};

    fn world() -> qolsr_graph::Topology {
        let mut rng = SimRng::seed_from_u64(21);
        deploy(
            &Deployment {
                width: 200.0,
                height: 200.0,
                radius: 80.0,
                mean_degree: 6.0,
            },
            &UniformWeights::paper_defaults(),
            &mut rng,
        )
    }

    fn model() -> RandomWaypoint {
        RandomWaypoint::new(
            (200.0, 200.0),
            SimDuration::from_secs(1),
            (10.0, 30.0),
            SimDuration::from_secs(1),
            UniformWeights::paper_defaults(),
        )
    }

    #[test]
    fn motion_changes_links_over_time() {
        let topo = world();
        if topo.len() < 4 {
            return; // degenerate draw; other seeds cover the behavior
        }
        let s = ScenarioBuilder::new(&topo, 5)
            .with(model())
            .generate(SimDuration::from_secs(30));
        let summary = s.summary();
        assert!(summary.moves > 0, "nodes must move");
        assert!(
            summary.link_ups > 0 && summary.link_downs > 0,
            "mid-run the topology must both gain and lose links: {summary:?}"
        );
    }

    #[test]
    fn moved_positions_stay_in_field() {
        let topo = world();
        let s = ScenarioBuilder::new(&topo, 6)
            .with(model())
            .generate(SimDuration::from_secs(20));
        for te in s.events() {
            if let WorldEvent::Move { to, .. } = te.event {
                assert!((0.0..=200.0).contains(&to.x), "x out of field: {to}");
                assert!((0.0..=200.0).contains(&to.y), "y out of field: {to}");
            }
        }
    }

    #[test]
    fn grid_and_naive_scans_agree() {
        let topo = world();
        for seed in [3, 17, 99] {
            let grid = ScenarioBuilder::new(&topo, seed)
                .with(model())
                .generate(SimDuration::from_secs(25));
            let naive = ScenarioBuilder::new(&topo, seed)
                .with(model().with_scan(NeighborScan::Naive))
                .generate(SimDuration::from_secs(25));
            assert_eq!(
                grid.events(),
                naive.events(),
                "grid and naive scans diverge (seed {seed})"
            );
        }
    }

    /// A minimal *external* mover: teleports one node every 3 s without
    /// touching any links — exactly the kind of composed model whose
    /// moves the waypoint's dirty tracking must pick up via the world's
    /// position epochs.
    struct Teleporter {
        next: SimTime,
    }

    impl MobilityModel for Teleporter {
        fn name(&self) -> &'static str {
            "teleporter"
        }

        fn next_activation(&self) -> Option<SimTime> {
            Some(self.next)
        }

        fn activate(
            &mut self,
            now: SimTime,
            world: &mut DynamicTopology,
            rng: &mut SimRng,
        ) -> Vec<WorldEvent> {
            let mut events = Vec::new();
            let to = Point2::new(rng.next_f64() * 200.0, rng.next_f64() * 200.0);
            apply_recorded(
                world,
                &mut events,
                WorldEvent::Move {
                    node: NodeId(0),
                    to,
                },
            );
            self.next = now + SimDuration::from_secs(3);
            events
        }
    }

    /// Moves applied by *another* composed model must get their radius
    /// links re-synced by the grid path exactly like the naive full
    /// scan does.
    #[test]
    fn grid_scan_tracks_external_movers() {
        let topo = world();
        if topo.is_empty() {
            return;
        }
        for seed in [5, 41] {
            let build = |scan: NeighborScan| {
                // Fast legs + long pauses: nodes mostly sit still, so a
                // teleported node's only position change is the external
                // one — the epoch-tracking path, not self-moves, must
                // mark it dirty.
                let waypoint = RandomWaypoint::new(
                    (200.0, 200.0),
                    SimDuration::from_secs(1),
                    (80.0, 90.0),
                    SimDuration::from_secs(12),
                    UniformWeights::paper_defaults(),
                )
                .with_scan(scan);
                ScenarioBuilder::new(&topo, seed)
                    .with(Teleporter {
                        next: SimTime::ZERO + SimDuration::from_secs(3),
                    })
                    .with(waypoint)
                    .generate(SimDuration::from_secs(25))
            };
            let grid = build(NeighborScan::Grid);
            let naive = build(NeighborScan::Naive);
            assert_eq!(
                grid.events(),
                naive.events(),
                "external moves break grid/naive equality (seed {seed})"
            );
        }
    }

    #[test]
    fn border_aware_sampling_stays_in_field() {
        let topo = world();
        let s = ScenarioBuilder::new(&topo, 8)
            .with(model().with_sampling(WaypointSampling::BorderAware))
            .generate(SimDuration::from_secs(40));
        assert!(s.summary().moves > 0);
        for te in s.events() {
            if let WorldEvent::Move { to, .. } = te.event {
                assert!((0.0..=200.0).contains(&to.x), "x out of field: {to}");
                assert!((0.0..=200.0).contains(&to.y), "y out of field: {to}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_rejected() {
        let _ = RandomWaypoint::new(
            (10.0, 10.0),
            SimDuration::ZERO,
            (1.0, 2.0),
            SimDuration::ZERO,
            UniformWeights::paper_defaults(),
        );
    }
}
