//! Random-waypoint mobility with radius-based link recomputation.

use qolsr_graph::deploy::UniformWeights;
use qolsr_graph::{DynamicTopology, NodeId, Point2, WorldEvent};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::MobilityModel;

#[derive(Debug, Clone, Copy)]
struct NodeMotion {
    target: Point2,
    /// Units of distance per second; zero while paused.
    speed: f64,
    pause_until: SimTime,
}

/// The classic random-waypoint model: every node picks a uniform waypoint
/// in the field and a uniform speed, travels there in straight-line steps
/// of one `tick`, pauses, and repeats. After each tick the unit-disk link
/// set is recomputed from the new positions: links that left the radius go
/// down, pairs that entered it come up with freshly drawn QoS labels
/// (links that persist keep theirs — drift is [`GaussMarkovDrift`]'s job).
///
/// [`GaussMarkovDrift`]: super::GaussMarkovDrift
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    field: (f64, f64),
    tick: SimDuration,
    speed: (f64, f64),
    pause: SimDuration,
    weights: UniformWeights,
    next: SimTime,
    motion: Vec<NodeMotion>,
    positions: Vec<Point2>,
}

impl RandomWaypoint {
    /// Creates the model.
    ///
    /// * `field` — width × height the waypoints are drawn from;
    /// * `tick` — motion/recomputation interval;
    /// * `speed` — uniform `[min, max)` node speed in distance units per
    ///   second;
    /// * `pause` — rest time at each waypoint;
    /// * `weights` — sampler for the labels of newly appearing links.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero, the field is empty, or the speed range
    /// is invalid.
    pub fn new(
        field: (f64, f64),
        tick: SimDuration,
        speed: (f64, f64),
        pause: SimDuration,
        weights: UniformWeights,
    ) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        assert!(field.0 > 0.0 && field.1 > 0.0, "field must be non-empty");
        assert!(
            speed.0 > 0.0 && speed.0 <= speed.1,
            "speed range must be positive"
        );
        Self {
            field,
            tick,
            speed,
            pause,
            weights,
            next: SimTime::ZERO,
            motion: Vec::new(),
            positions: Vec::new(),
        }
    }

    fn draw_waypoint(&self, rng: &mut SimRng) -> Point2 {
        Point2::new(rng.next_f64() * self.field.0, rng.next_f64() * self.field.1)
    }

    fn draw_speed(&self, rng: &mut SimRng) -> f64 {
        self.speed.0 + rng.next_f64() * (self.speed.1 - self.speed.0)
    }
}

impl MobilityModel for RandomWaypoint {
    fn name(&self) -> &'static str {
        "random-waypoint"
    }

    fn init(&mut self, world: &DynamicTopology, rng: &mut SimRng) {
        self.positions = world.nodes().map(|n| world.position(n)).collect();
        self.motion = (0..world.len())
            .map(|_| NodeMotion {
                target: self.draw_waypoint(rng),
                speed: self.draw_speed(rng),
                pause_until: SimTime::ZERO,
            })
            .collect();
        // First motion step one tick in.
        self.next = SimTime::ZERO + self.tick;
    }

    fn next_activation(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn activate(
        &mut self,
        now: SimTime,
        world: &DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        let dt = self.tick.as_secs_f64();

        // Move every node (including inactive ones: a powered-off device
        // keeps travelling) toward its waypoint.
        for (i, motion) in self.motion.iter_mut().enumerate() {
            if now < motion.pause_until {
                continue;
            }
            let pos = self.positions[i];
            let step = motion.speed * dt;
            let dist = pos.distance(motion.target);
            let new_pos = if dist <= step {
                // Arrived: pause here, then head for a fresh waypoint.
                motion.pause_until = now + self.pause;
                let arrived = motion.target;
                motion.target =
                    Point2::new(rng.next_f64() * self.field.0, rng.next_f64() * self.field.1);
                motion.speed = self.speed.0 + rng.next_f64() * (self.speed.1 - self.speed.0);
                arrived
            } else {
                Point2::new(
                    pos.x + (motion.target.x - pos.x) / dist * step,
                    pos.y + (motion.target.y - pos.y) / dist * step,
                )
            };
            if new_pos != pos {
                self.positions[i] = new_pos;
                events.push(WorldEvent::Move {
                    node: NodeId(i as u32),
                    to: new_pos,
                });
            }
        }

        // Recompute the unit-disk link set over the new positions.
        let r_sq = world.radius() * world.radius();
        let n = self.positions.len();
        for a in 0..n {
            let na = NodeId(a as u32);
            if !world.is_active(na) {
                continue;
            }
            for b in (a + 1)..n {
                let nb = NodeId(b as u32);
                if !world.is_active(nb) {
                    continue;
                }
                let in_range = self.positions[a].distance_sq(self.positions[b]) <= r_sq;
                let linked = world.has_link(na, nb);
                if in_range && !linked {
                    events.push(WorldEvent::LinkUp {
                        a: na,
                        b: nb,
                        qos: self.weights.sample(rng),
                    });
                } else if !in_range && linked {
                    events.push(WorldEvent::LinkDown { a: na, b: nb });
                }
            }
        }

        self.next = now + self.tick;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use qolsr_graph::deploy::{deploy, Deployment};

    fn world() -> qolsr_graph::Topology {
        let mut rng = SimRng::seed_from_u64(21);
        deploy(
            &Deployment {
                width: 200.0,
                height: 200.0,
                radius: 80.0,
                mean_degree: 6.0,
            },
            &UniformWeights::paper_defaults(),
            &mut rng,
        )
    }

    fn model() -> RandomWaypoint {
        RandomWaypoint::new(
            (200.0, 200.0),
            SimDuration::from_secs(1),
            (10.0, 30.0),
            SimDuration::from_secs(1),
            UniformWeights::paper_defaults(),
        )
    }

    #[test]
    fn motion_changes_links_over_time() {
        let topo = world();
        if topo.len() < 4 {
            return; // degenerate draw; other seeds cover the behavior
        }
        let s = ScenarioBuilder::new(&topo, 5)
            .with(model())
            .generate(SimDuration::from_secs(30));
        let summary = s.summary();
        assert!(summary.moves > 0, "nodes must move");
        assert!(
            summary.link_ups > 0 && summary.link_downs > 0,
            "mid-run the topology must both gain and lose links: {summary:?}"
        );
    }

    #[test]
    fn moved_positions_stay_in_field() {
        let topo = world();
        let s = ScenarioBuilder::new(&topo, 6)
            .with(model())
            .generate(SimDuration::from_secs(20));
        for te in s.events() {
            if let WorldEvent::Move { to, .. } = te.event {
                assert!((0.0..=200.0).contains(&to.x), "x out of field: {to}");
                assert!((0.0..=200.0).contains(&to.y), "y out of field: {to}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_rejected() {
        let _ = RandomWaypoint::new(
            (10.0, 10.0),
            SimDuration::ZERO,
            (1.0, 2.0),
            SimDuration::ZERO,
            UniformWeights::paper_defaults(),
        );
    }
}
