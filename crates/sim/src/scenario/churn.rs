//! Poisson node churn: exponential leave arrivals, exponential downtimes.

use std::collections::BTreeMap;

use qolsr_graph::deploy::UniformWeights;
use qolsr_graph::{DynamicTopology, NodeId, WorldEvent};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{apply_recorded, sample_exponential, MobilityModel, NeighborScan};

/// Node churn as a Poisson process: departures arrive network-wide at
/// `leave_rate` per second (each hitting a uniformly random active node),
/// and a departed node rejoins after an exponential downtime with mean
/// `mean_downtime`. On rejoin the node reconnects to every active node
/// within the communication radius — discovered through the world's
/// shared [`SpatialGrid`] index by default — with freshly drawn link
/// labels.
///
/// [`SpatialGrid`]: qolsr_graph::SpatialGrid
#[derive(Debug, Clone)]
pub struct PoissonChurn {
    leave_rate: f64,
    mean_downtime: SimDuration,
    weights: UniformWeights,
    scan: NeighborScan,
    next_leave: Option<SimTime>,
    /// Pending rejoins: `time -> nodes` (BTreeMap keeps them ordered).
    rejoins: BTreeMap<SimTime, Vec<NodeId>>,
}

impl PoissonChurn {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `leave_rate` is not in `(0, 10⁴]` departures per second
    /// (higher rates would truncate the mean inter-arrival below the
    /// microsecond clock resolution and stall scenario generation).
    pub fn new(leave_rate: f64, mean_downtime: SimDuration, weights: UniformWeights) -> Self {
        assert!(
            leave_rate > 0.0 && leave_rate <= 1e4,
            "leave rate must be in (0, 1e4] per second"
        );
        Self {
            leave_rate,
            mean_downtime,
            weights,
            scan: NeighborScan::Grid,
            next_leave: None,
            rejoins: BTreeMap::new(),
        }
    }

    /// Selects the rejoin-relink discovery path (default: the grid; the
    /// naive path exists for differential tests).
    pub fn with_scan(mut self, scan: NeighborScan) -> Self {
        self.scan = scan;
        self
    }

    fn mean_interarrival(&self) -> SimDuration {
        SimDuration::from_micros((1e6 / self.leave_rate) as u64)
    }
}

impl MobilityModel for PoissonChurn {
    fn name(&self) -> &'static str {
        "poisson-churn"
    }

    fn init(&mut self, _world: &DynamicTopology, rng: &mut SimRng) {
        self.next_leave = Some(SimTime::ZERO + sample_exponential(self.mean_interarrival(), rng));
    }

    fn next_activation(&self) -> Option<SimTime> {
        let rejoin = self.rejoins.keys().next().copied();
        match (self.next_leave, rejoin) {
            (Some(l), Some(r)) => Some(l.min(r)),
            (l, r) => l.or(r),
        }
    }

    fn activate(
        &mut self,
        now: SimTime,
        world: &mut DynamicTopology,
        rng: &mut SimRng,
    ) -> Vec<WorldEvent> {
        let mut events = Vec::new();

        // Rejoins due at this instant: join plus radius links. Each Join
        // applies to `world` immediately, so nodes rejoining at the same
        // instant see each other as active and link up. Both discovery
        // paths visit candidates in ascending id order, so they draw
        // link labels in the same sequence (grid ≡ naive traces).
        if let Some(nodes) = self.rejoins.remove(&now) {
            let r = world.radius();
            let r_sq = r * r;
            for node in nodes {
                apply_recorded(world, &mut events, WorldEvent::Join { node });
                let here = world.position(node);
                let candidates: Vec<NodeId> = match self.scan {
                    NeighborScan::Naive => world
                        .nodes()
                        .filter(|&other| here.distance_sq(world.position(other)) <= r_sq)
                        .collect(),
                    NeighborScan::Grid => world.nodes_within(here, r),
                };
                for other in candidates {
                    if other != node && world.is_active(other) {
                        let qos = self.weights.sample(rng);
                        apply_recorded(
                            world,
                            &mut events,
                            WorldEvent::LinkUp {
                                a: node,
                                b: other,
                                qos,
                            },
                        );
                    }
                }
            }
        }

        // A departure due at this instant hits a uniform active node
        // (same-instant rejoiners are back in the draw).
        if self.next_leave == Some(now) {
            let active: Vec<NodeId> = world.nodes().filter(|&n| world.is_active(n)).collect();
            if !active.is_empty() {
                let victim = active[rng.next_below(active.len() as u64) as usize];
                apply_recorded(world, &mut events, WorldEvent::Leave { node: victim });
                let back = now + sample_exponential(self.mean_downtime, rng);
                self.rejoins.entry(back).or_default().push(victim);
            }
            self.next_leave = Some(now + sample_exponential(self.mean_interarrival(), rng));
        }

        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use qolsr_graph::{Point2, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    fn clique5() -> qolsr_graph::Topology {
        let mut b = TopologyBuilder::new(50.0);
        let ids: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(Point2::new(i as f64 * 10.0, 0.0)))
            .collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                if (ids[i].0 as i64 - ids[j].0 as i64).unsigned_abs() * 10 <= 50 {
                    b.link(ids[i], ids[j], LinkQos::uniform(2)).unwrap();
                }
            }
        }
        b.build()
    }

    fn scenario(seed: u64, rate: f64) -> crate::scenario::Scenario {
        ScenarioBuilder::new(&clique5(), seed)
            .with(PoissonChurn::new(
                rate,
                SimDuration::from_secs(4),
                UniformWeights::paper_defaults(),
            ))
            .generate(SimDuration::from_secs(60))
    }

    #[test]
    fn leaves_and_rejoins_happen() {
        let s = scenario(1, 0.5);
        let summary = s.summary();
        assert!(summary.leaves > 0, "no churn generated: {summary:?}");
        assert!(summary.joins > 0, "departed nodes must come back");
        assert!(
            summary.link_ups > 0,
            "rejoining nodes must relink: {summary:?}"
        );
    }

    #[test]
    fn rejoin_links_respect_radius() {
        let s = scenario(2, 1.0);
        let mut world = qolsr_graph::DynamicTopology::new(&clique5());
        for te in s.events() {
            if let WorldEvent::LinkUp { a, b, .. } = te.event {
                let d = world.position(a).distance(world.position(b));
                assert!(d <= world.radius() + 1e-9, "rejoin link out of range");
            }
            world.apply(&te.event);
        }
    }

    #[test]
    fn same_instant_rejoins_link_to_each_other() {
        use crate::time::SimTime;
        use qolsr_graph::DynamicTopology;

        let mut world = DynamicTopology::new(&clique5());
        world.apply(&WorldEvent::Leave { node: NodeId(0) });
        world.apply(&WorldEvent::Leave { node: NodeId(1) });

        let mut model = PoissonChurn::new(
            0.001,
            SimDuration::from_secs(1),
            UniformWeights::paper_defaults(),
        );
        let at = SimTime::ZERO + SimDuration::from_secs(5);
        model
            .rejoins
            .entry(at)
            .or_default()
            .extend([NodeId(0), NodeId(1)]);
        model.next_leave = Some(SimTime::ZERO + SimDuration::from_secs(1_000));

        let mut rng = SimRng::seed_from_u64(1);
        let events = model.activate(at, &mut world, &mut rng);
        assert!(!events.is_empty(), "rejoins must produce events");
        assert!(world.is_active(NodeId(0)) && world.is_active(NodeId(1)));
        assert!(
            world.has_link(NodeId(0), NodeId(1)),
            "nodes rejoining at the same instant within range must link"
        );
    }

    #[test]
    #[should_panic(expected = "leave rate must be in")]
    fn absurd_leave_rate_rejected() {
        // Above the clock resolution the mean inter-arrival truncates to
        // zero and generation would stall; reject at construction.
        let _ = PoissonChurn::new(
            2_000_000.0,
            SimDuration::from_secs(1),
            UniformWeights::paper_defaults(),
        );
    }

    #[test]
    fn higher_rates_mean_more_churn() {
        let low = scenario(3, 0.2).summary().leaves;
        let high = scenario(3, 2.0).summary().leaves;
        assert!(high > low, "rate 2.0 ({high}) should out-churn 0.2 ({low})");
    }
}
