//! Bounded event tracing for protocol debugging.

use std::collections::VecDeque;
use std::fmt;

use qolsr_graph::NodeId;

use crate::time::SimTime;

/// What happened in a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An event (start, timer or delivery) was dispatched to a node.
    Dispatched,
    /// A scheduled world event changed the topology (the recorded node is
    /// one affected endpoint).
    WorldChanged,
}

/// One traced engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// The node the event was dispatched to.
    pub node: NodeId,
    /// The event kind.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {:?}", self.time, self.node, self.kind)
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s: keeps the most recent
/// `capacity` events while counting everything ever recorded.
///
/// # Examples
///
/// ```
/// use qolsr_graph::NodeId;
/// use qolsr_sim::trace::{TraceBuffer, TraceEvent, TraceKind};
/// use qolsr_sim::SimTime;
///
/// let mut buf = TraceBuffer::new(2);
/// for i in 0..3 {
///     buf.record(TraceEvent {
///         time: SimTime::from_micros(i),
///         node: NodeId(0),
///         kind: TraceKind::Dispatched,
///     });
/// }
/// assert_eq!(buf.total_recorded(), 3);
/// assert_eq!(buf.iter().count(), 2); // oldest event evicted
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    total: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total += 1;
    }

    /// Number of events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates over the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(t),
            node: NodeId(1),
            kind: TraceKind::Dispatched,
        }
    }

    #[test]
    fn keeps_most_recent() {
        let mut buf = TraceBuffer::new(3);
        for t in 0..5 {
            buf.record(ev(t));
        }
        let times: Vec<u64> = buf.iter().map(|e| e.time.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(buf.total_recorded(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }

    #[test]
    fn display_contains_time_and_node() {
        let s = ev(1_000_000).to_string();
        assert!(s.contains("t=1.000000s"));
        assert!(s.contains("n1"));
    }
}
