//! Event queues for the discrete-event engine.
//!
//! The engine's dominant event classes are short-horizon: periodic
//! HELLO/TC/sweep timers (≤ a few seconds ahead) and radio deliveries
//! (milliseconds ahead). A comparison-based [`BinaryHeap`] pays
//! `O(log n)` pointer-chasing per push/pop on a heap whose size grows
//! with the node count; the [`TimerWheel`] here replaces that hot path
//! with `O(1)` bucket inserts into a slotted ring, falling back to a
//! heap only for far-future or irregular events (long-horizon world
//! events, degenerate timers).
//!
//! Both queue flavours pop in **exactly** the same total order — the
//! item's `Ord` (the engine orders by `(time, seq)`) — so a simulation
//! replays byte-identically whichever scheduler backs it. The
//! differential suites pin this.
//!
//! # Structure
//!
//! The wheel is a two-tier hierarchy:
//!
//! * a **due heap** holding every queued item with `time < due_end` —
//!   the slot window currently being consumed. It is tiny (one slot's
//!   worth of items plus same-window inserts), so its `log` cost is
//!   negligible;
//! * a **ring** of `N_SLOTS` buckets, each `SLOT_US` µs wide, covering
//!   the next `SPAN_US` µs after `due_end`. Inserts hash by time,
//!   `O(1)`; an occupancy bitmap lets the consumer skip empty slots
//!   word-at-a-time;
//! * an **overflow heap** for items beyond the ring horizon. Whenever
//!   the window advances, matured overflow items are re-filed into the
//!   ring.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Slot width exponent: each ring slot covers `2^10` µs ≈ 1 ms.
const SLOT_BITS: u32 = 10;
/// Width of one ring slot in microseconds.
const SLOT_US: u64 = 1 << SLOT_BITS;
/// Number of ring slots.
const N_SLOTS: usize = 8192;
/// Occupancy bitmap words.
const N_WORDS: usize = N_SLOTS / 64;
/// Ring horizon: the wheel covers `[due_end, due_end + SPAN_US)`.
/// One slot short of the full ring so absolute slot indices stay
/// unambiguous modulo [`N_SLOTS`].
const SPAN_US: u64 = ((N_SLOTS as u64) - 1) << SLOT_BITS;
/// Capacity a drained slot keeps. Busy simulations put tens of
/// thousands of deliveries into a single 1 ms slot; without this cap
/// every slot would eventually retain its peak-burst capacity and the
/// wheel's footprint would approach `N_SLOTS × peak` (gigabytes at
/// n = 4000). A small retained buffer keeps the common refill
/// allocation-free while bounding idle memory to `N_SLOTS × 32` items.
const SLOT_RETAIN: usize = 32;

/// An item schedulable on an [`EventQueue`].
///
/// `Ord` must be a total order consistent with `due_micros` (items
/// compare by due time first); the engine uses `(time, seq)`.
pub trait QueueItem: Ord {
    /// Absolute due instant in microseconds of virtual time.
    fn due_micros(&self) -> u64;
}

/// Which backing structure an engine event queue uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The slotted [`TimerWheel`] (default): `O(1)` inserts for the
    /// periodic-timer/delivery hot path, heap fallback for far-future
    /// events.
    #[default]
    TimerWheel,
    /// A plain binary heap — the reference scheduler the wheel is
    /// differentially tested against.
    BinaryHeap,
}

/// The slotted timer wheel. See the [module docs](self) for the
/// design; pops yield items in exact ascending `Ord` order.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Items with `time < due_end`, popped in `Ord` order.
    due: BinaryHeap<Reverse<T>>,
    /// Exclusive upper bound (µs) of the due window; always a slot
    /// boundary.
    due_end: u64,
    /// The ring: slot `(t >> SLOT_BITS) % N_SLOTS` holds items due in
    /// `[due_end, due_end + SPAN_US)`.
    slots: Box<[Vec<T>]>,
    /// One bit per slot: set iff the slot is non-empty. Boxed so the
    /// wheel stays small by value (`EventQueue` is an enum whose other
    /// variant is a bare heap).
    occupied: Box<[u64; N_WORDS]>,
    /// Items currently stored in ring slots.
    ring_len: usize,
    /// Items due at or beyond the ring horizon.
    overflow: BinaryHeap<Reverse<T>>,
    /// Total queued items.
    len: usize,
}

impl<T: QueueItem> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: QueueItem> TimerWheel<T> {
    /// Creates an empty wheel with the due window starting at time 0.
    pub fn new() -> Self {
        Self {
            due: BinaryHeap::new(),
            due_end: SLOT_US,
            slots: (0..N_SLOTS).map(|_| Vec::new()).collect(),
            occupied: Box::new([0; N_WORDS]),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues an item. Items due before the current window fall into
    /// the due heap, so even out-of-window inserts stay ordered.
    pub fn push(&mut self, item: T) {
        let t = item.due_micros();
        self.len += 1;
        if t < self.due_end {
            self.due.push(Reverse(item));
        } else if t - self.due_end < SPAN_US {
            self.ring_insert(item);
        } else {
            self.overflow.push(Reverse(item));
        }
    }

    /// Removes and returns the globally smallest item.
    pub fn pop(&mut self) -> Option<T> {
        if !self.advance_to_due() {
            return None;
        }
        let Reverse(item) = self.due.pop().expect("advance_to_due filled the due heap");
        self.len -= 1;
        Some(item)
    }

    /// Due instant of the smallest queued item, without removing it.
    /// May advance internal cursors (never changes queue content).
    pub fn next_due(&mut self) -> Option<u64> {
        if !self.advance_to_due() {
            return None;
        }
        self.due.peek().map(|Reverse(item)| item.due_micros())
    }

    fn ring_insert(&mut self, item: T) {
        let idx = ((item.due_micros() >> SLOT_BITS) as usize) % N_SLOTS;
        if self.slots[idx].is_empty() {
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
        }
        self.slots[idx].push(item);
        self.ring_len += 1;
    }

    /// Moves matured overflow items (now within the ring horizon) into
    /// the ring or due heap.
    fn refill_from_overflow(&mut self) {
        while let Some(Reverse(top)) = self.overflow.peek() {
            let t = top.due_micros();
            if t >= self.due_end && t - self.due_end >= SPAN_US {
                break;
            }
            let Reverse(item) = self.overflow.pop().expect("peeked");
            if t < self.due_end {
                self.due.push(Reverse(item));
            } else {
                self.ring_insert(item);
            }
        }
    }

    /// Distance (in slots, 0-based) from `start` to the next occupied
    /// slot, scanning the bitmap cyclically. Caller guarantees
    /// `ring_len > 0`.
    fn next_occupied_distance(&self, start: usize) -> usize {
        let word0 = start / 64;
        let bit0 = start % 64;
        let masked = self.occupied[word0] & (u64::MAX << bit0);
        if masked != 0 {
            return masked.trailing_zeros() as usize - bit0;
        }
        for k in 1..=N_WORDS {
            let w = self.occupied[(word0 + k) % N_WORDS];
            if w != 0 {
                return k * 64 - bit0 + w.trailing_zeros() as usize;
            }
        }
        unreachable!("ring_len > 0 but no occupied slot");
    }

    /// Advances the due window until the due heap holds the global
    /// minimum. Returns `false` when the whole queue is empty.
    fn advance_to_due(&mut self) -> bool {
        loop {
            if !self.due.is_empty() {
                return true;
            }
            if self.ring_len == 0 {
                let Some(Reverse(top)) = self.overflow.peek() else {
                    return false;
                };
                // Jump the window straight to the overflow head's slot;
                // everything queued is at or beyond it.
                self.due_end = (top.due_micros() >> SLOT_BITS) << SLOT_BITS;
                self.refill_from_overflow();
                continue;
            }
            // Skip to the next occupied slot and drain it into the due
            // heap; its whole window moves behind `due_end`.
            let start = ((self.due_end >> SLOT_BITS) as usize) % N_SLOTS;
            let d = self.next_occupied_distance(start);
            let idx = (start + d) % N_SLOTS;
            self.due_end += (d as u64 + 1) << SLOT_BITS;
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
            self.ring_len -= self.slots[idx].len();
            let slot = &mut self.slots[idx];
            self.due.reserve(slot.len());
            for item in slot.drain(..) {
                self.due.push(Reverse(item));
            }
            if slot.capacity() > SLOT_RETAIN {
                slot.shrink_to(SLOT_RETAIN);
            }
            self.refill_from_overflow();
        }
    }
}

/// An engine event queue: the [`TimerWheel`] or the reference binary
/// heap, behind one interface. Pop order is identical for both.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Timer-wheel backed queue.
    Wheel(TimerWheel<T>),
    /// Plain binary-heap backed queue.
    Heap(BinaryHeap<Reverse<T>>),
}

impl<T: QueueItem> EventQueue<T> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::TimerWheel => Self::Wheel(TimerWheel::new()),
            SchedulerKind::BinaryHeap => Self::Heap(BinaryHeap::new()),
        }
    }

    /// Queues an item.
    pub fn push(&mut self, item: T) {
        match self {
            Self::Wheel(w) => w.push(item),
            Self::Heap(h) => h.push(Reverse(item)),
        }
    }

    /// Removes and returns the smallest item.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            Self::Wheel(w) => w.pop(),
            Self::Heap(h) => h.pop().map(|Reverse(item)| item),
        }
    }

    /// Due instant (µs) of the smallest item, if any.
    pub fn next_due(&mut self) -> Option<u64> {
        match self {
            Self::Wheel(w) => w.next_due(),
            Self::Heap(h) => h.peek().map(|Reverse(item)| item.due_micros()),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        match self {
            Self::Wheel(w) => w.len(),
            Self::Heap(h) => h.len(),
        }
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    struct Item(u64, u64); // (time, seq)

    impl QueueItem for Item {
        fn due_micros(&self) -> u64 {
            self.0
        }
    }

    fn drain(q: &mut EventQueue<Item>) -> Vec<Item> {
        let mut out = Vec::new();
        while let Some(item) = q.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn wheel_pops_sorted() {
        let mut q = EventQueue::new(SchedulerKind::TimerWheel);
        let items = [
            Item(5_000_000, 3),
            Item(0, 0),
            Item(1_000, 1),
            Item(1_000, 2),
            Item(123_456_789, 4), // beyond ring horizon → overflow
            Item(2_000_000, 5),
        ];
        for it in items {
            q.push(it);
        }
        let mut expect = items.to_vec();
        expect.sort();
        assert_eq!(drain(&mut q), expect);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_matches_heap_under_interleaving() {
        let mut wheel = EventQueue::new(SchedulerKind::TimerWheel);
        let mut heap = EventQueue::new(SchedulerKind::BinaryHeap);
        let mut t = 0u64;
        // Pseudo-random push/pop interleaving with a deterministic LCG.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for seq in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(seq);
            let delay = state % 9_000_000; // up to 9 s ahead — exercises overflow
            let item = Item(t + delay, seq);
            wheel.push(item);
            heap.push(item);
            if state.is_multiple_of(3) {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some(it) = a {
                    t = t.max(it.0);
                }
            }
        }
        assert_eq!(wheel.len(), heap.len());
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn next_due_reports_minimum_without_consuming() {
        let mut q = EventQueue::new(SchedulerKind::TimerWheel);
        q.push(Item(50_000_000, 1)); // far future: overflow
        assert_eq!(q.next_due(), Some(50_000_000));
        assert_eq!(q.len(), 1);
        q.push(Item(700, 2));
        assert_eq!(q.next_due(), Some(700));
        assert_eq!(q.pop(), Some(Item(700, 2)));
        assert_eq!(q.pop(), Some(Item(50_000_000, 1)));
        assert_eq!(q.next_due(), None);
    }

    #[test]
    fn same_slot_items_order_by_seq() {
        let mut q = EventQueue::new(SchedulerKind::TimerWheel);
        // All in one slot window, pushed out of order.
        q.push(Item(2_000_000, 9));
        q.push(Item(2_000_000, 1));
        q.push(Item(2_000_100, 0));
        assert_eq!(
            drain(&mut q),
            vec![Item(2_000_000, 1), Item(2_000_000, 9), Item(2_000_100, 0)]
        );
    }

    #[test]
    fn push_behind_window_is_still_ordered() {
        let mut q = EventQueue::new(SchedulerKind::TimerWheel);
        q.push(Item(10_000_000, 0));
        assert_eq!(q.pop(), Some(Item(10_000_000, 0)));
        // The window advanced past 10 s; a (hypothetical) earlier push
        // must still pop before later ones.
        q.push(Item(11_000_000, 2));
        q.push(Item(10_000_001, 1));
        assert_eq!(q.pop(), Some(Item(10_000_001, 1)));
        assert_eq!(q.pop(), Some(Item(11_000_000, 2)));
    }
}
