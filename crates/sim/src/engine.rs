//! The actor-based discrete-event engine and its ideal-MAC radio model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use qolsr_graph::{NodeId, Topology};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// Identifier a protocol uses to distinguish its timers (opaque to the
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u32);

/// A per-node protocol state machine driven by the [`Simulator`].
///
/// Handlers interact with the world exclusively through the [`Context`]:
/// broadcasting/unicasting messages over the radio, arming timers and
/// drawing deterministic randomness.
pub trait Actor {
    /// The message payload exchanged between nodes. `Clone` because a
    /// broadcast fans out to every radio neighbor.
    type Msg: Clone;

    /// Called once at simulation start (time 0), in node-id order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId);

    /// Called when a message transmitted by a radio neighbor arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);
}

/// Ideal-MAC radio parameters: every transmission reaches its
/// destination(s) after `latency` plus a uniform jitter in `[0, jitter)`;
/// there is no loss, interference or collision (per the paper's §IV.A
/// simulation assumptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadioConfig {
    /// Fixed per-hop latency.
    pub latency: SimDuration,
    /// Upper bound (exclusive) of the uniform per-delivery jitter; zero
    /// disables jitter and makes delivery order a pure function of send
    /// order.
    pub jitter: SimDuration,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
        }
    }
}

/// Effects an actor can request during a handler invocation.
enum Effect<M> {
    Broadcast(M),
    Unicast(NodeId, M),
    Timer(SimDuration, TimerId),
}

/// Handler-side interface to the engine.
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    rng: &'a mut SimRng,
    effects: &'a mut Vec<Effect<M>>,
    stop: &'a mut bool,
}

impl<M> Context<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this handler runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Transmits `msg` to every current radio neighbor.
    pub fn broadcast(&mut self, msg: M) {
        self.effects.push(Effect::Broadcast(msg));
    }

    /// Transmits `msg` to `to`. Delivered only if `to` is a radio neighbor
    /// when the effect is applied; otherwise it is counted as a dropped
    /// unicast in [`SimStats`].
    pub fn unicast(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Unicast(to, msg));
    }

    /// Arms a timer that fires `after` from now with the given id. Timers
    /// are one-shot; re-arm from the handler for periodic behaviour.
    pub fn set_timer(&mut self, after: SimDuration, timer: TimerId) {
        self.effects.push(Effect::Timer(after, timer));
    }

    /// Requests the simulation to stop after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

enum EventKind<M> {
    Start,
    Timer(TimerId),
    Deliver { from: NodeId, msg: M },
}

struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via Reverse at the call sites: order by (time, seq).
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Engine statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched (start + timer + delivery).
    pub events: u64,
    /// Broadcast transmissions requested.
    pub broadcasts: u64,
    /// Unicast transmissions requested.
    pub unicasts: u64,
    /// Point-to-point deliveries performed (a broadcast to `k` neighbors
    /// counts `k`).
    pub deliveries: u64,
    /// Unicasts dropped because the destination was not a neighbor.
    pub dropped_unicasts: u64,
    /// Timer firings.
    pub timers: u64,
}

/// The discrete-event simulator: one [`Actor`] per topology node, an
/// event queue ordered by `(time, sequence)`, and the ideal-MAC radio.
///
/// Determinism: all randomness flows from the construction seed (each node
/// receives a split stream), and simultaneous events dispatch in schedule
/// order, so identical inputs yield identical executions.
pub struct Simulator<A: Actor> {
    topology: Topology,
    radio: RadioConfig,
    actors: Vec<A>,
    rngs: Vec<SimRng>,
    engine_rng: SimRng,
    queue: BinaryHeap<std::cmp::Reverse<Scheduled<A::Msg>>>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    stop: bool,
    trace: Option<TraceBuffer>,
}

impl<A: Actor> Simulator<A> {
    /// Creates a simulator over `topology`, building one actor per node
    /// with `build`, and schedules every actor's start event at time 0.
    pub fn new(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        mut build: impl FnMut(NodeId) -> A,
    ) -> Self {
        let mut engine_rng = SimRng::seed_from_u64(seed);
        let n = topology.len();
        let actors: Vec<A> = topology.nodes().map(&mut build).collect();
        let rngs: Vec<SimRng> = (0..n).map(|_| engine_rng.split()).collect();
        let mut sim = Self {
            topology,
            radio,
            actors,
            rngs,
            engine_rng,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            stop: false,
            trace: None,
        };
        for node in sim.topology.nodes() {
            sim.push(SimTime::ZERO, node, EventKind::Start);
        }
        sim
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(Scheduled {
            time,
            seq,
            node,
            kind,
        }));
    }

    /// Enables event tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor(&self, n: NodeId) -> &A {
        &self.actors[n.index()]
    }

    /// Mutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor_mut(&mut self, n: NodeId) -> &mut A {
        &mut self.actors[n.index()]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Dispatches the next event. Returns `false` when the queue is empty
    /// or a handler requested a stop.
    pub fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        let Some(std::cmp::Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time must be monotone");
        self.now = ev.time;
        self.stats.events += 1;

        let node = ev.node;
        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                node,
                rng: &mut self.rngs[node.index()],
                effects: &mut effects,
                stop: &mut self.stop,
            };
            let actor = &mut self.actors[node.index()];
            match ev.kind {
                EventKind::Start => {
                    actor.on_start(&mut ctx);
                }
                EventKind::Timer(t) => {
                    self.stats.timers += 1;
                    actor.on_timer(&mut ctx, t);
                }
                EventKind::Deliver { from, msg } => {
                    self.stats.deliveries += 1;
                    actor.on_message(&mut ctx, from, msg);
                }
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                time: self.now,
                node,
                kind: TraceKind::Dispatched,
            });
        }
        self.apply_effects(node, effects);
        true
    }

    fn delivery_delay(&mut self) -> SimDuration {
        let jitter_us = self.radio.jitter.as_micros();
        if jitter_us == 0 {
            self.radio.latency
        } else {
            self.radio.latency + SimDuration::from_micros(self.engine_rng.next_below(jitter_us))
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect<A::Msg>>) {
        for effect in effects {
            match effect {
                Effect::Broadcast(msg) => {
                    self.stats.broadcasts += 1;
                    let neighbors: Vec<NodeId> =
                        self.topology.neighbors(node).map(|(n, _)| n).collect();
                    for to in neighbors {
                        let delay = self.delivery_delay();
                        let at = self.now + delay;
                        self.push(
                            at,
                            to,
                            EventKind::Deliver {
                                from: node,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                Effect::Unicast(to, msg) => {
                    self.stats.unicasts += 1;
                    if self.topology.has_link(node, to) {
                        let delay = self.delivery_delay();
                        let at = self.now + delay;
                        self.push(at, to, EventKind::Deliver { from: node, msg });
                    } else {
                        self.stats.dropped_unicasts += 1;
                    }
                }
                Effect::Timer(after, timer) => {
                    let at = self.now + after;
                    self.push(at, node, EventKind::Timer(timer));
                }
            }
        }
    }

    /// Runs until the queue drains, a handler stops the simulation, or
    /// virtual time would exceed `deadline`; afterwards `now() ==
    /// deadline` unless stopped early.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(std::cmp::Reverse(ev)) if ev.time <= deadline => {
                    if !self.step() {
                        return;
                    }
                }
                _ => break,
            }
        }
        if !self.stop {
            self.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qolsr_graph::{Point2, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    /// Three nodes in a line: 0—1—2.
    fn line3() -> Topology {
        let mut b = TopologyBuilder::new(10.0);
        let n0 = b.add_node(Point2::new(0.0, 0.0));
        let n1 = b.add_node(Point2::new(5.0, 0.0));
        let n2 = b.add_node(Point2::new(10.0, 0.0));
        b.link(n0, n1, LinkQos::uniform(1)).unwrap();
        b.link(n1, n2, LinkQos::uniform(1)).unwrap();
        b.build()
    }

    #[derive(Default)]
    struct Flood {
        seen: bool,
        heard_from: Vec<NodeId>,
    }

    impl Actor for Flood {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.node_id() == NodeId(0) {
                self.seen = true;
                ctx.broadcast(());
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId) {}

        fn on_message(&mut self, ctx: &mut Context<'_, ()>, from: NodeId, _msg: ()) {
            self.heard_from.push(from);
            if !self.seen {
                self.seen = true;
                ctx.broadcast(());
            }
        }
    }

    #[test]
    fn flood_reaches_all_nodes() {
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Flood::default());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        for (_, a) in sim.actors() {
            assert!(a.seen);
        }
        // Node 1 hears the original from 0 and the re-broadcast echo from 2.
        assert_eq!(sim.actor(NodeId(1)).heard_from, vec![NodeId(0), NodeId(2)]);
        let stats = sim.stats();
        assert_eq!(stats.broadcasts, 3); // all three nodes broadcast once
        assert!(stats.deliveries >= 4);
    }

    #[test]
    fn messages_take_latency_to_arrive() {
        struct Once;
        impl Actor for Once {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {
                assert_eq!(ctx.now(), SimTime::from_micros(1_000));
                ctx.stop();
            }
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Once);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_micros(1_000));
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u32>,
        }
        impl Actor for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.set_timer(SimDuration::from_millis(20), TimerId(2));
                    ctx.set_timer(SimDuration::from_millis(10), TimerId(1));
                    ctx.set_timer(SimDuration::from_millis(30), TimerId(3));
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, t: TimerId) {
                self.fired.push(t.0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Timers {
            fired: Vec::new(),
        });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.actor(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers, 3);
    }

    #[test]
    fn unicast_to_non_neighbor_is_dropped() {
        struct Uni;
        impl Actor for Uni {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.unicast(NodeId(2), ()); // not a neighbor of 0
                    ctx.unicast(NodeId(1), ()); // neighbor
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Uni);
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.unicasts, 2);
        assert_eq!(stats.dropped_unicasts, 1);
        assert_eq!(stats.deliveries, 1);
    }

    #[test]
    fn identical_seeds_identical_executions() {
        let run = |seed: u64| {
            let mut sim =
                Simulator::new(line3(), RadioConfig::default(), seed, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            (sim.stats(), sim.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn jitter_stays_deterministic_per_seed() {
        let radio = RadioConfig {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(5),
        };
        let run = |seed: u64| {
            let mut sim = Simulator::new(line3(), radio, seed, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            sim.stats()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn trace_records_dispatches() {
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Flood::default());
        sim.enable_trace(16);
        sim.run_for(SimDuration::from_secs(1));
        let trace = sim.trace().unwrap();
        assert!(trace.total_recorded() > 0);
        assert!(trace.iter().next().is_some());
    }
}
