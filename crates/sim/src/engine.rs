//! The actor-based discrete-event engine and its ideal-MAC radio model.
//!
//! The engine runs against a *mutable* world: a scheduled stream of
//! [`WorldEvent`]s (link up/down, QoS drift, motion, node churn) is
//! interleaved with actor events in the same `(time, sequence)` order, so
//! a scenario's topology dynamics and the protocol's reaction to them
//! replay identically from a seed.

use std::cmp::Ordering;

use qolsr_graph::{DynamicTopology, NodeId, Topology, WorldEvent};
use qolsr_metrics::LinkQos;

use crate::queue::{EventQueue, QueueItem, SchedulerKind};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// Identifier a protocol uses to distinguish its timers (opaque to the
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u32);

/// A per-node protocol state machine driven by the [`Simulator`].
///
/// Handlers interact with the world exclusively through the [`Context`]:
/// broadcasting/unicasting messages over the radio, arming timers and
/// drawing deterministic randomness.
pub trait Actor {
    /// The message payload exchanged between nodes. `Clone` because a
    /// broadcast fans out to every radio neighbor.
    type Msg: Clone;

    /// Called once at simulation start (time 0), in node-id order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId);

    /// Called when a message transmitted by a radio neighbor arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when the node rejoins the network after a scenario
    /// [`WorldEvent::Leave`] (which models power-off: all pending timers
    /// and in-flight deliveries of the previous life are cancelled).
    /// Implementations should drop protocol state here; [`Actor::on_start`]
    /// runs again immediately afterwards.
    fn on_reset(&mut self) {}

    /// Called by the sharded engine ([`crate::ShardedSimulator`]) right
    /// after [`Actor::on_reset`] when a rejoining node is re-homed to the
    /// shard covering its current position; `shard` is the destination
    /// shard index. Actors holding shard-affine resources (e.g. a handle
    /// into a per-shard store arena) rebind them here. The single-queue
    /// engine never calls this; the default is a no-op.
    fn on_rehome(&mut self, shard: usize) {
        let _ = shard;
    }

    /// Called when the node crashes and instantly reboots
    /// ([`WorldEvent::Crash`]): pending timers and in-flight deliveries
    /// of the previous life are cancelled and [`Actor::on_start`] runs
    /// again immediately. Unlike the graceful [`Actor::on_reset`] (whose
    /// contract lets implementations preserve identity that survives an
    /// orderly power cycle, e.g. message sequence numbers), a crash
    /// must wipe *everything* — the rebooted node remembers nothing.
    /// The default forwards to [`Actor::on_reset`].
    fn on_crash(&mut self) {
        self.on_reset();
    }

    /// Produces the radio-corrupted copy of an in-flight frame, or
    /// `None` when the message type is opaque to the corruption injector
    /// (the default): the engine then delivers the frame intact. The
    /// damage description is fully decided by the engine's dedicated
    /// corruption RNG stream — implementations apply it mechanically
    /// (e.g. via [`FrameDamage::apply_to_bytes`]) and must not draw
    /// randomness of their own.
    fn corrupt_frame(msg: &Self::Msg, damage: &FrameDamage) -> Option<Self::Msg> {
        let _ = (msg, damage);
        None
    }

    /// Classifies a message as a data-plane frame so the engines can
    /// account for it in the [`SimStats`] `data_*` counters (sent,
    /// delivered, and every in-flight drop cause) without understanding
    /// the payload. Pure classification: implementations must not draw
    /// randomness or mutate anything, and the engines never branch on
    /// the answer — event order, RNG streams and delivery schedules are
    /// identical whether a frame is data or control. The default (`false`
    /// for everything) keeps control-plane-only protocols untouched.
    fn is_data(msg: &Self::Msg) -> bool {
        let _ = msg;
        false
    }
}

/// Radio parameters: every transmission reaches its destination(s)
/// after `latency` plus a uniform jitter in `[0, jitter)`, subject to
/// the [`PhyModel`]. Under the default [`PhyModel::Ideal`] there is no
/// loss, interference or collision (per the paper's §IV.A simulation
/// assumptions); [`PhyModel::Lossy`] samples per-delivery drops from a
/// distance-derived error curve and optionally models receiver capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadioConfig {
    /// Fixed per-hop latency.
    pub latency: SimDuration,
    /// Upper bound (exclusive) of the uniform per-delivery jitter; zero
    /// disables jitter and makes delivery order a pure function of send
    /// order.
    pub jitter: SimDuration,
    /// The physical-layer channel model.
    pub phy: PhyModel,
    /// The frame-corruption injector (default [`FrameCorruption::Off`]:
    /// no corruption randomness exists at all).
    pub corruption: FrameCorruption,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            phy: PhyModel::Ideal,
            corruption: FrameCorruption::Off,
        }
    }
}

/// The physical-layer channel behaviour of the radio.
///
/// `Ideal` is the living reference formulation every lossy run is
/// differentially pinned against (the same pattern as
/// [`SchedulerKind`]'s heap or `TcScoping::Uniform`): it performs **no
/// PHY randomness at all**, so `Ideal` runs are byte-identical to the
/// engine as it existed before the PHY layer landed. `Lossy` draws its
/// randomness from dedicated per-sender streams split from
/// `seed ^ LOSS_STREAM_SALT` — never from the engine or actor streams —
/// so switching models cannot perturb protocol jitter or actor draws,
/// and drop decisions are identical across [`Simulator`] and
/// [`crate::ShardedSimulator`] at every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhyModel {
    /// Perfect channel: every frame within radio range is delivered.
    #[default]
    Ideal,
    /// Probabilistic channel with distance-dependent loss and optional
    /// receiver capture.
    Lossy(LossyPhy),
}

/// Parameters of [`PhyModel::Lossy`]. All integer-valued so the radio
/// config stays `Eq`/hashable.
///
/// The drop curve is `p(d) = (edge_drop_ppm / 10⁶) · (d / R)^exponent`
/// for sender–receiver distance `d` and radio range `R` — zero loss at
/// zero distance rising to `edge_drop_ppm` at the range edge, the usual
/// shape of a path-loss-driven frame-error curve. Links created without
/// geometry (distance beyond `R`, e.g. scenario `LinkUp` overrides) are
/// clamped to the edge probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossyPhy {
    /// Drop probability at the radio-range edge, in parts per million
    /// (`1_000_000` = certain loss at the edge).
    pub edge_drop_ppm: u32,
    /// Distance exponent of the drop curve (2 ≈ free-space path loss;
    /// higher values concentrate loss at the fringe).
    pub exponent: u32,
    /// Receiver-capture window: after a frame is received, further
    /// frames arriving at the same receiver within this window collide
    /// and are lost (first-frame capture). `ZERO` disables collision
    /// modelling.
    pub capture_window: SimDuration,
}

impl LossyPhy {
    /// A lossy channel with the given edge drop rate, quadratic distance
    /// falloff and no collision modelling.
    pub fn with_edge_drop_ppm(edge_drop_ppm: u32) -> Self {
        Self {
            edge_drop_ppm,
            exponent: 2,
            capture_window: SimDuration::ZERO,
        }
    }

    /// The drop probability for a frame travelling distance `d` under
    /// radio range `radius`, in `[0, 1]`.
    pub fn drop_probability(&self, d: f64, radius: f64) -> f64 {
        let frac = if radius > 0.0 {
            (d / radius).clamp(0.0, 1.0)
        } else {
            1.0
        };
        f64::from(self.edge_drop_ppm) / 1e6 * frac.powi(self.exponent as i32)
    }
}

/// The radio-path frame-corruption injector: seeded bit-flips and
/// truncation applied per delivery.
///
/// `Off` is the living reference formulation in the
/// [`PhyModel::Ideal`]/`SchedulerKind` mold: it performs **no corruption
/// randomness at all**, so default runs are byte-identical to the engine
/// as it existed before the injector landed. `On` draws from dedicated
/// per-sender streams split from `seed ^ CORRUPT_STREAM_SALT` — never
/// from the engine, actor or PHY-loss streams — with exactly one gate
/// draw per surviving delivery attempt, so corruption decisions are a
/// pure function of the sender's send history: identical across
/// [`Simulator`] and [`crate::ShardedSimulator`] at every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameCorruption {
    /// No corruption (the reference default).
    #[default]
    Off,
    /// Seeded per-delivery corruption.
    On(CorruptionParams),
}

/// Parameters of [`FrameCorruption::On`]. All integer-valued so the
/// radio config stays `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionParams {
    /// Probability a delivered frame is corrupted, in parts per million.
    pub corrupt_ppm: u32,
    /// Probability a corruption event truncates the frame instead of
    /// flipping bits, in parts per million.
    pub truncate_ppm: u32,
    /// Upper bound on bit flips per corrupted frame (the count is drawn
    /// uniformly from `1..=max_bit_flips`; 0 behaves as 1).
    pub max_bit_flips: u8,
    /// Probability a damaged frame *evades* the link-layer frame check
    /// (FCS/CRC) and reaches the protocol, in parts per million. The
    /// rest are detected and dropped at the radio
    /// ([`SimStats::fcs_drops`]) — which is what a real link layer does
    /// to virtually all corrupted frames. Without this gate a flooding
    /// protocol goes supercritical under bit flips: every flip landing
    /// in an originator/seq field mints a fresh flood identity that
    /// duplicate suppression cannot stop, and each re-flood breeds more
    /// mutants than it took to create it.
    pub fcs_evade_ppm: u32,
}

impl Default for CorruptionParams {
    fn default() -> Self {
        Self {
            corrupt_ppm: 20_000, // 2% of delivered frames
            truncate_ppm: 250_000,
            max_bit_flips: 4,
            fcs_evade_ppm: 30_000, // 3% slip past the frame check
        }
    }
}

/// The damage the corruption injector decided to inflict on one frame
/// copy, described length-independently (the engine never sees the wire
/// bytes): truncation keeps a fraction of the frame, and each bit flip
/// targets a fraction of the frame's bit length. [`Actor::corrupt_frame`]
/// implementations apply it via [`FrameDamage::apply_to_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDamage {
    /// `Some(keep_ppm)`: truncate the frame to `len·keep_ppm/10⁶` bytes
    /// (rounded down). `None`: no truncation.
    pub truncate_keep_ppm: Option<u32>,
    /// Bit positions to flip, each as a fraction of the (post-truncation)
    /// frame bit length in parts per million.
    pub flip_points_ppm: Vec<u32>,
}

impl FrameDamage {
    /// Draws one damage description from a corruption stream (called by
    /// the engines after the per-delivery gate draw hits).
    pub(crate) fn sample(params: &CorruptionParams, rng: &mut SimRng) -> Self {
        if rng.next_f64() < f64::from(params.truncate_ppm) / 1e6 {
            Self {
                truncate_keep_ppm: Some(rng.next_below(1_000_000) as u32),
                flip_points_ppm: Vec::new(),
            }
        } else {
            let flips = 1 + rng.next_below(u64::from(params.max_bit_flips.max(1)));
            Self {
                truncate_keep_ppm: None,
                flip_points_ppm: (0..flips)
                    .map(|_| rng.next_below(1_000_000) as u32)
                    .collect(),
            }
        }
    }

    /// Applies the damage to a wire buffer in place: truncation first,
    /// then bit flips over whatever remains. Flips on an empty buffer
    /// are no-ops.
    pub fn apply_to_bytes(&self, bytes: &mut Vec<u8>) {
        if let Some(keep) = self.truncate_keep_ppm {
            let keep_len = (bytes.len() as u64 * u64::from(keep) / 1_000_000) as usize;
            bytes.truncate(keep_len);
        }
        let bits = bytes.len() as u64 * 8;
        if bits == 0 {
            return;
        }
        for &point in &self.flip_points_ppm {
            let bit = (u64::from(point) * bits / 1_000_000).min(bits - 1);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
}

/// Salt separating the PHY loss streams from the engine seed: the loss
/// master RNG is `seed ^ LOSS_STREAM_SALT`, split once per node in node
/// order. Both engines derive the streams identically, and `Ideal` runs
/// never touch them.
pub(crate) const LOSS_STREAM_SALT: u64 = 0x4c4f_5353_5048_5921; // "LOSSPHY!"

/// Salt separating the frame-corruption streams from the engine seed
/// (and from the loss streams): the corruption master RNG is
/// `seed ^ CORRUPT_STREAM_SALT`, split once per node in node order.
/// [`FrameCorruption::Off`] runs never touch them.
pub(crate) const CORRUPT_STREAM_SALT: u64 = 0x4252_4954_464c_4950; // "BRITFLIP"

/// Builds the per-sender corruption streams for `n` nodes — empty under
/// [`FrameCorruption::Off`] (no corruption randomness exists to track).
pub(crate) fn corrupt_streams(seed: u64, n: usize, corruption: FrameCorruption) -> Vec<SimRng> {
    match corruption {
        FrameCorruption::Off => Vec::new(),
        FrameCorruption::On(_) => {
            let mut master = SimRng::seed_from_u64(seed ^ CORRUPT_STREAM_SALT);
            (0..n).map(|_| master.split()).collect()
        }
    }
}

/// The fate the corruption injector decided for one in-flight frame
/// copy.
pub(crate) enum InFlight<M> {
    /// Deliver the original frame untouched.
    Intact,
    /// Deliver this damaged copy instead.
    Damaged(M),
    /// The damage was caught by the link-layer frame check: no delivery.
    DroppedByFcs,
}

/// Samples the corruption injector for one surviving delivery attempt
/// from the sender's stream (`corrupt_rngs[slot]`) and asks the actor
/// type for the damaged copy. Exactly one gate draw per call (even when
/// the corruption probability is zero); when the gate hits, the damage
/// draws and one FCS draw follow — the stream position stays a pure
/// function of the sender's send history, identical across engines and
/// shard counts. Counts `fcs_drops` for detected damage and
/// `corrupted_frames` only when a mangled frame will actually arrive
/// (opaque message types opt out via the `corrupt_frame` default and
/// pass intact).
pub(crate) fn corrupt_in_flight<A: Actor>(
    corruption: FrameCorruption,
    corrupt_rngs: &mut [SimRng],
    slot: usize,
    msg: &A::Msg,
    stats: &mut SimStats,
) -> InFlight<A::Msg> {
    if corrupt_rngs.is_empty() {
        return InFlight::Intact;
    }
    let FrameCorruption::On(params) = corruption else {
        return InFlight::Intact;
    };
    let rng = &mut corrupt_rngs[slot];
    if rng.next_f64() >= f64::from(params.corrupt_ppm) / 1e6 {
        return InFlight::Intact;
    }
    let damage = FrameDamage::sample(&params, rng);
    if rng.next_f64() >= f64::from(params.fcs_evade_ppm) / 1e6 {
        stats.fcs_drops += 1;
        return InFlight::DroppedByFcs;
    }
    match A::corrupt_frame(msg, &damage) {
        Some(damaged) => {
            stats.corrupted_frames += 1;
            InFlight::Damaged(damaged)
        }
        None => InFlight::Intact,
    }
}

/// Builds the per-sender PHY loss streams for `n` nodes — empty under
/// [`PhyModel::Ideal`] (no PHY randomness exists to track).
pub(crate) fn loss_streams(seed: u64, n: usize, phy: PhyModel) -> Vec<SimRng> {
    match phy {
        PhyModel::Ideal => Vec::new(),
        PhyModel::Lossy(_) => {
            let mut master = SimRng::seed_from_u64(seed ^ LOSS_STREAM_SALT);
            (0..n).map(|_| master.split()).collect()
        }
    }
}

/// Samples the PHY for one delivery attempt from `from` to `to`:
/// `true` when the frame is dropped in flight. `Ideal` never drops and
/// consumes no randomness; `Lossy` draws exactly one value from the
/// sender's loss stream per attempt (even at probability zero), so the
/// stream position is a pure function of the sender's send history —
/// identical across engines and shard counts.
pub(crate) fn phy_drops_frame(
    phy: PhyModel,
    world: &DynamicTopology,
    from: NodeId,
    to: NodeId,
    loss_rng: &mut SimRng,
) -> bool {
    let PhyModel::Lossy(lossy) = phy else {
        return false;
    };
    let d = world.position(from).distance(world.position(to));
    loss_rng.next_f64() < lossy.drop_probability(d, world.radius())
}

/// First-frame-capture collision check at delivery dispatch: a frame
/// arriving while the receiver is still busy with a previous frame is
/// lost; otherwise it is received and occupies the receiver for the
/// capture window. Deterministic (no randomness) and shard-invariant,
/// because a receiver's deliveries dispatch in the same global
/// `(time, seq)` order in every engine.
pub(crate) fn phy_collides(phy: PhyModel, now: SimTime, busy_until: &mut SimTime) -> bool {
    let PhyModel::Lossy(lossy) = phy else {
        return false;
    };
    if lossy.capture_window == SimDuration::ZERO {
        return false;
    }
    if now < *busy_until {
        true
    } else {
        *busy_until = now + lossy.capture_window;
        false
    }
}

/// Effects an actor can request during a handler invocation.
pub(crate) enum Effect<M> {
    Broadcast(M),
    Unicast(NodeId, M),
    Timer(SimDuration, TimerId),
}

/// Handler-side interface to the engine. Fields are crate-visible so the
/// sharded engine ([`crate::ShardedSimulator`]) can construct contexts for
/// the same handlers.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) world: &'a DynamicTopology,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) stop: &'a mut bool,
}

impl<M> Context<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this handler runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Measures the current QoS of the link from this node to `to`, or
    /// `None` if no such link exists right now. This is the radio-layer
    /// link measurement the paper scopes out ("the computation of these
    /// metrics is out of the scope of this paper"): the simulator provides
    /// ground truth at the instant of the call, so protocols see QoS drift
    /// and link churn as they would through a real measurement module.
    pub fn link_qos(&self, to: NodeId) -> Option<LinkQos> {
        self.world.link_qos(self.node, to)
    }

    /// Current radio neighbors of this node with measured link QoS,
    /// ascending by id.
    pub fn radio_neighbors(&self) -> Vec<(NodeId, LinkQos)> {
        self.world.neighbors(self.node).collect()
    }

    /// This node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Transmits `msg` to every current radio neighbor.
    pub fn broadcast(&mut self, msg: M) {
        self.effects.push(Effect::Broadcast(msg));
    }

    /// Transmits `msg` to `to`. Delivered only if `to` is a radio neighbor
    /// when the effect is applied; otherwise it is counted as a dropped
    /// unicast in [`SimStats`].
    pub fn unicast(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Unicast(to, msg));
    }

    /// Arms a timer that fires `after` from now with the given id. Timers
    /// are one-shot; re-arm from the handler for periodic behaviour.
    pub fn set_timer(&mut self, after: SimDuration, timer: TimerId) {
        self.effects.push(Effect::Timer(after, timer));
    }

    /// Requests the simulation to stop after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

pub(crate) enum EventKind<M> {
    Start,
    Timer(TimerId),
    Deliver { from: NodeId, msg: M },
    World(WorldEvent),
}

pub(crate) struct Scheduled<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) node: NodeId,
    /// The node generation this event belongs to; events from a previous
    /// life (before a `Leave`) are dropped at dispatch. World events
    /// always dispatch (`u32::MAX` sentinel, never compared).
    pub(crate) generation: u32,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-queue order: (time, seq), unique per event.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<M> QueueItem for Scheduled<M> {
    fn due_micros(&self) -> u64 {
        self.time.as_micros()
    }
}

/// Engine statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched (start + timer + delivery + world).
    pub events: u64,
    /// Broadcast transmissions requested.
    pub broadcasts: u64,
    /// Unicast transmissions requested.
    pub unicasts: u64,
    /// Point-to-point deliveries performed (a broadcast to `k` neighbors
    /// counts `k`).
    pub deliveries: u64,
    /// Unicasts dropped because the destination was not a neighbor.
    pub dropped_unicasts: u64,
    /// Timer firings.
    pub timers: u64,
    /// World events applied that actually changed the topology.
    pub world_changes: u64,
    /// Actor events dropped because the node left the network in the
    /// meantime (stale timers and in-flight deliveries of a previous
    /// life).
    pub stale_dropped: u64,
    /// Deliveries dropped in flight by the probabilistic PHY
    /// ([`PhyModel::Lossy`]); always zero under [`PhyModel::Ideal`].
    pub phy_drops: u64,
    /// Deliveries lost to receiver collision: the frame arrived while a
    /// previously captured frame still occupied the receiver.
    pub collisions: u64,
    /// Deliveries dropped at dispatch because an active
    /// [`WorldEvent::Partition`] separated sender and receiver.
    pub partition_drops: u64,
    /// Deliveries whose frame the corruption injector damaged in flight
    /// ([`FrameCorruption::On`]) *and* which evaded the link-layer frame
    /// check; the mangled frame still arrives.
    pub corrupted_frames: u64,
    /// Damaged frames the link-layer frame check (FCS) detected and
    /// dropped at the radio — the fate of almost all corrupted frames on
    /// a real link (see [`CorruptionParams::fcs_evade_ppm`]).
    pub fcs_drops: u64,
    /// Unicast transmissions of data-plane frames ([`Actor::is_data`]);
    /// a subset of [`SimStats::unicasts`]. Zero unless a data plane is
    /// installed.
    pub data_unicasts: u64,
    /// Point-to-point deliveries of data frames; a subset of
    /// [`SimStats::deliveries`].
    pub data_deliveries: u64,
    /// Data unicasts dropped because the destination was not a neighbor
    /// (the route cache pointed at a link the world no longer has); a
    /// subset of [`SimStats::dropped_unicasts`].
    pub data_no_link_drops: u64,
    /// Data deliveries dropped in flight by the probabilistic PHY; a
    /// subset of [`SimStats::phy_drops`].
    pub data_phy_drops: u64,
    /// Data frames the link-layer frame check dropped at the radio; a
    /// subset of [`SimStats::fcs_drops`].
    pub data_fcs_drops: u64,
    /// Data deliveries dropped at dispatch by an active partition; a
    /// subset of [`SimStats::partition_drops`].
    pub data_partition_drops: u64,
    /// Data deliveries lost to receiver collision; a subset of
    /// [`SimStats::collisions`].
    pub data_collisions: u64,
    /// Data deliveries dropped because the receiver's node life ended
    /// while the frame was in flight; a subset of
    /// [`SimStats::stale_dropped`].
    pub data_stale_drops: u64,
}

impl SimStats {
    /// Data frames that left a sender but reached no receiver: the
    /// in-flight loss the engine (not a node) is responsible for. After
    /// the event queue quiesces this equals
    /// `data_unicasts − data_deliveries`; mid-run the difference also
    /// includes frames still in flight.
    pub fn data_in_flight_drops(&self) -> u64 {
        self.data_no_link_drops
            + self.data_phy_drops
            + self.data_fcs_drops
            + self.data_partition_drops
            + self.data_collisions
            + self.data_stale_drops
    }
}

/// The discrete-event simulator: one [`Actor`] per topology node, an
/// event queue ordered by `(time, sequence)` interleaving actor events
/// with scheduled [`WorldEvent`]s, and the ideal-MAC radio over the
/// resulting [`DynamicTopology`].
///
/// Determinism: all randomness flows from the construction seed (each node
/// receives a split stream), world events are applied at fixed scheduled
/// instants, and simultaneous events dispatch in schedule order, so
/// identical inputs yield identical executions.
pub struct Simulator<A: Actor> {
    world: DynamicTopology,
    radio: RadioConfig,
    actors: Vec<A>,
    /// Per-node lifetime counter; bumped when the node leaves the network
    /// so pending events of the old life are dropped at dispatch.
    generations: Vec<u32>,
    rngs: Vec<SimRng>,
    engine_rng: SimRng,
    /// Per-sender PHY loss streams (see [`loss_streams`]); empty under
    /// [`PhyModel::Ideal`].
    loss_rngs: Vec<SimRng>,
    /// Per-sender corruption streams (see [`corrupt_streams`]); empty
    /// under [`FrameCorruption::Off`].
    corrupt_rngs: Vec<SimRng>,
    /// Per-receiver capture state for the collision model; empty unless
    /// the PHY is lossy.
    busy_until: Vec<SimTime>,
    queue: EventQueue<Scheduled<A::Msg>>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    stop: bool,
    trace: Option<TraceBuffer>,
}

impl<A: Actor> Simulator<A> {
    /// Creates a simulator over `topology`, building one actor per node
    /// with `build`, and schedules every actor's start event at time 0.
    pub fn new(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        build: impl FnMut(NodeId) -> A,
    ) -> Self {
        Self::with_scheduler(topology, radio, seed, SchedulerKind::default(), build)
    }

    /// Like [`Simulator::new`], but with an explicit event-queue
    /// scheduler. The timer wheel (default) and the binary heap pop in
    /// exactly the same `(time, seq)` order, so runs replay identically
    /// under either — the differential suites pin this; the heap exists
    /// as the reference to test the wheel against.
    pub fn with_scheduler(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        scheduler: SchedulerKind,
        mut build: impl FnMut(NodeId) -> A,
    ) -> Self {
        let mut engine_rng = SimRng::seed_from_u64(seed);
        let n = topology.len();
        let actors: Vec<A> = topology.nodes().map(&mut build).collect();
        let rngs: Vec<SimRng> = (0..n).map(|_| engine_rng.split()).collect();
        let loss_rngs = loss_streams(seed, n, radio.phy);
        let corrupt_rngs = corrupt_streams(seed, n, radio.corruption);
        let busy_until = if loss_rngs.is_empty() {
            Vec::new()
        } else {
            vec![SimTime::ZERO; n]
        };
        let mut sim = Self {
            world: DynamicTopology::new(&topology),
            radio,
            actors,
            generations: vec![0; n],
            rngs,
            engine_rng,
            loss_rngs,
            corrupt_rngs,
            busy_until,
            queue: EventQueue::new(scheduler),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            stop: false,
            trace: None,
        };
        for node in sim.world.nodes() {
            sim.push(SimTime::ZERO, node, EventKind::Start);
        }
        sim
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<A::Msg>) {
        let generation = match kind {
            EventKind::World(_) => u32::MAX,
            _ => self.generations[node.index()],
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            seq,
            node,
            generation,
            kind,
        });
    }

    /// Schedules a world event for application at virtual time `at`
    /// (clamped to now). Events scheduled for the same instant apply in
    /// scheduling order, interleaved with actor events by `(time, seq)`.
    pub fn schedule_world(&mut self, at: SimTime, event: WorldEvent) {
        let at = at.max(self.now);
        self.push(at, NodeId(0), EventKind::World(event));
    }

    /// Schedules delivery of a raw frame from `from` to `to` after
    /// `after`, bypassing the radio (no neighbor check, no PHY sampling).
    /// A fault-injection/test hook: robustness suites use it to feed a
    /// node arbitrary — including garbage — frames through the real
    /// dispatch path.
    pub fn inject_frame(&mut self, after: SimDuration, from: NodeId, to: NodeId, msg: A::Msg) {
        let at = self.now + after;
        self.push(at, to, EventKind::Deliver { from, msg });
    }

    /// Schedules a whole stream of timed world events (e.g. a generated
    /// scenario schedule).
    pub fn schedule_world_events(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, WorldEvent)>,
    ) {
        for (at, ev) in events {
            self.schedule_world(at, ev);
        }
    }

    /// Enables event tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The simulated world (current ground truth).
    pub fn world(&self) -> &DynamicTopology {
        &self.world
    }

    /// Mutable access to the world, for out-of-band mutation between
    /// `run_*` calls (scheduled [`WorldEvent`]s via
    /// [`Simulator::schedule_world`] are the deterministic way to change
    /// the world mid-run).
    pub fn world_mut(&mut self) -> &mut DynamicTopology {
        &mut self.world
    }

    /// Immutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor(&self, n: NodeId) -> &A {
        &self.actors[n.index()]
    }

    /// Mutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor_mut(&mut self, n: NodeId) -> &mut A {
        &mut self.actors[n.index()]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Dispatches the next event. Returns `false` when the queue is empty
    /// or a handler requested a stop.
    pub fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time must be monotone");
        self.now = ev.time;
        self.stats.events += 1;

        let node = ev.node;
        if let EventKind::World(world_event) = ev.kind {
            self.apply_world_event(world_event);
            return true;
        }
        // Events of a previous node life (armed before a `Leave`) are
        // dropped: the node's timers died with it, and in-flight frames
        // have no receiver.
        if ev.generation != self.generations[node.index()] {
            self.stats.stale_dropped += 1;
            if let EventKind::Deliver { msg, .. } = &ev.kind {
                if A::is_data(msg) {
                    self.stats.data_stale_drops += 1;
                }
            }
            return true;
        }
        // An active partition drops cross-cut frames at dispatch —
        // including frames already in flight when the cut landed — and
        // leaves no mark on the receiver (checked before the capture
        // window, which a never-received frame cannot occupy).
        if let EventKind::Deliver { from, msg } = &ev.kind {
            if self.world.partitioned(*from, node) {
                self.stats.partition_drops += 1;
                if A::is_data(msg) {
                    self.stats.data_partition_drops += 1;
                }
                return true;
            }
        }
        // Receiver capture: a frame landing inside the busy window of a
        // previously received frame collides and is lost before the
        // actor sees it (like a stale drop, it leaves no trace record).
        if let EventKind::Deliver { msg, .. } = &ev.kind {
            if !self.busy_until.is_empty()
                && phy_collides(self.radio.phy, self.now, &mut self.busy_until[node.index()])
            {
                self.stats.collisions += 1;
                if A::is_data(msg) {
                    self.stats.data_collisions += 1;
                }
                return true;
            }
        }

        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                node,
                world: &self.world,
                rng: &mut self.rngs[node.index()],
                effects: &mut effects,
                stop: &mut self.stop,
            };
            let actor = &mut self.actors[node.index()];
            match ev.kind {
                EventKind::Start => {
                    actor.on_start(&mut ctx);
                }
                EventKind::Timer(t) => {
                    self.stats.timers += 1;
                    actor.on_timer(&mut ctx, t);
                }
                EventKind::Deliver { from, msg } => {
                    self.stats.deliveries += 1;
                    if A::is_data(&msg) {
                        self.stats.data_deliveries += 1;
                    }
                    actor.on_message(&mut ctx, from, msg);
                }
                EventKind::World(_) => unreachable!("world events dispatch above"),
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                time: self.now,
                node,
                kind: TraceKind::Dispatched,
            });
        }
        self.apply_effects(node, effects);
        true
    }

    fn apply_world_event(&mut self, event: WorldEvent) {
        let changed = self.world.apply(&event);
        if changed {
            self.stats.world_changes += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    time: self.now,
                    node: match event {
                        WorldEvent::LinkUp { a, .. }
                        | WorldEvent::LinkDown { a, .. }
                        | WorldEvent::QosChange { a, .. } => a,
                        WorldEvent::Move { node, .. }
                        | WorldEvent::Join { node }
                        | WorldEvent::Leave { node }
                        | WorldEvent::Crash { node } => node,
                        // Network-level faults have no single subject.
                        WorldEvent::Partition { .. } | WorldEvent::Heal => NodeId(0),
                    },
                    kind: TraceKind::WorldChanged,
                });
            }
        }
        match event {
            WorldEvent::Leave { node } if changed => {
                // Cancel the old life's pending timers and deliveries.
                self.generations[node.index()] += 1;
            }
            WorldEvent::Join { node } if changed => {
                // The node boots fresh: protocol state resets and the
                // start handler runs again (in the *current* generation,
                // so its new timers are live). The radio front-end is
                // new hardware too — no capture window survives a
                // power cycle.
                self.actors[node.index()].on_reset();
                if let Some(busy) = self.busy_until.get_mut(node.index()) {
                    *busy = SimTime::ZERO;
                }
                self.push(self.now, node, EventKind::Start);
            }
            WorldEvent::Crash { node } if changed => {
                // Instant reboot: the node never deactivates and keeps
                // its links, but the old life's timers and in-flight
                // deliveries die with the crash, the actor wipes
                // everything (including sequence numbers — see
                // `Actor::on_crash`), and the start handler runs again
                // in the new generation.
                self.generations[node.index()] += 1;
                self.actors[node.index()].on_crash();
                if let Some(busy) = self.busy_until.get_mut(node.index()) {
                    *busy = SimTime::ZERO;
                }
                self.push(self.now, node, EventKind::Start);
            }
            _ => {}
        }
    }

    /// Samples the PHY for one send from `from` to `to`; counts and
    /// reports an in-flight drop. Dropped frames never become delivery
    /// events (and consume no jitter draw — under zero jitter none
    /// exists, and with jitter the per-draw schedule is already a
    /// documented divergence between the engines).
    fn phy_drops(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.loss_rngs.is_empty() {
            return false;
        }
        let dropped = phy_drops_frame(
            self.radio.phy,
            &self.world,
            from,
            to,
            &mut self.loss_rngs[from.index()],
        );
        if dropped {
            self.stats.phy_drops += 1;
        }
        dropped
    }

    /// Samples the corruption injector for one surviving send from
    /// `from` and decides the frame copy's fate: intact, damaged, or
    /// caught by the link-layer frame check and dropped at the radio.
    fn corrupt_one(&mut self, from: NodeId, msg: &A::Msg) -> InFlight<A::Msg> {
        corrupt_in_flight::<A>(
            self.radio.corruption,
            &mut self.corrupt_rngs,
            from.index(),
            msg,
            &mut self.stats,
        )
    }

    fn delivery_delay(&mut self) -> SimDuration {
        let jitter_us = self.radio.jitter.as_micros();
        if jitter_us == 0 {
            self.radio.latency
        } else {
            self.radio.latency + SimDuration::from_micros(self.engine_rng.next_below(jitter_us))
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect<A::Msg>>) {
        for effect in effects {
            match effect {
                Effect::Broadcast(msg) => {
                    self.stats.broadcasts += 1;
                    let neighbors: Vec<NodeId> =
                        self.world.neighbors(node).map(|(n, _)| n).collect();
                    for to in neighbors {
                        if self.phy_drops(node, to) {
                            continue;
                        }
                        let payload = match self.corrupt_one(node, &msg) {
                            InFlight::Intact => msg.clone(),
                            InFlight::Damaged(damaged) => damaged,
                            InFlight::DroppedByFcs => continue,
                        };
                        let delay = self.delivery_delay();
                        let at = self.now + delay;
                        self.push(
                            at,
                            to,
                            EventKind::Deliver {
                                from: node,
                                msg: payload,
                            },
                        );
                    }
                }
                Effect::Unicast(to, msg) => {
                    self.stats.unicasts += 1;
                    let is_data = A::is_data(&msg);
                    if is_data {
                        self.stats.data_unicasts += 1;
                    }
                    if self.world.has_link(node, to) {
                        if self.phy_drops(node, to) {
                            if is_data {
                                self.stats.data_phy_drops += 1;
                            }
                            continue;
                        }
                        let payload = match self.corrupt_one(node, &msg) {
                            InFlight::Intact => msg,
                            InFlight::Damaged(damaged) => damaged,
                            InFlight::DroppedByFcs => {
                                if is_data {
                                    self.stats.data_fcs_drops += 1;
                                }
                                continue;
                            }
                        };
                        let delay = self.delivery_delay();
                        let at = self.now + delay;
                        self.push(
                            at,
                            to,
                            EventKind::Deliver {
                                from: node,
                                msg: payload,
                            },
                        );
                    } else {
                        self.stats.dropped_unicasts += 1;
                        if is_data {
                            self.stats.data_no_link_drops += 1;
                        }
                    }
                }
                Effect::Timer(after, timer) => {
                    let at = self.now + after;
                    self.push(at, node, EventKind::Timer(timer));
                }
            }
        }
    }

    /// Runs until the queue drains, a handler stops the simulation, or
    /// virtual time would exceed `deadline`; afterwards `now() ==
    /// deadline` unless stopped early. A deadline already in the past is
    /// a no-op — virtual time never rewinds.
    pub fn run_until(&mut self, deadline: SimTime) {
        let deadline = deadline.max(self.now);
        loop {
            match self.queue.next_due() {
                Some(due) if due <= deadline.as_micros() => {
                    if !self.step() {
                        return;
                    }
                }
                _ => break,
            }
        }
        if !self.stop {
            self.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qolsr_graph::{Point2, TopologyBuilder};
    use qolsr_metrics::LinkQos;

    /// Three nodes in a line: 0—1—2.
    fn line3() -> Topology {
        let mut b = TopologyBuilder::new(10.0);
        let n0 = b.add_node(Point2::new(0.0, 0.0));
        let n1 = b.add_node(Point2::new(5.0, 0.0));
        let n2 = b.add_node(Point2::new(10.0, 0.0));
        b.link(n0, n1, LinkQos::uniform(1)).unwrap();
        b.link(n1, n2, LinkQos::uniform(1)).unwrap();
        b.build()
    }

    #[derive(Default)]
    struct Flood {
        seen: bool,
        heard_from: Vec<NodeId>,
    }

    impl Actor for Flood {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.node_id() == NodeId(0) {
                self.seen = true;
                ctx.broadcast(());
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId) {}

        fn on_message(&mut self, ctx: &mut Context<'_, ()>, from: NodeId, _msg: ()) {
            self.heard_from.push(from);
            if !self.seen {
                self.seen = true;
                ctx.broadcast(());
            }
        }
    }

    #[test]
    fn flood_reaches_all_nodes() {
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Flood::default());
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        for (_, a) in sim.actors() {
            assert!(a.seen);
        }
        // Node 1 hears the original from 0 and the re-broadcast echo from 2.
        assert_eq!(sim.actor(NodeId(1)).heard_from, vec![NodeId(0), NodeId(2)]);
        let stats = sim.stats();
        assert_eq!(stats.broadcasts, 3); // all three nodes broadcast once
        assert!(stats.deliveries >= 4);
    }

    #[test]
    fn messages_take_latency_to_arrive() {
        struct Once;
        impl Actor for Once {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {
                assert_eq!(ctx.now(), SimTime::from_micros(1_000));
                ctx.stop();
            }
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Once);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_micros(1_000));
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u32>,
        }
        impl Actor for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.set_timer(SimDuration::from_millis(20), TimerId(2));
                    ctx.set_timer(SimDuration::from_millis(10), TimerId(1));
                    ctx.set_timer(SimDuration::from_millis(30), TimerId(3));
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, t: TimerId) {
                self.fired.push(t.0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Timers {
            fired: Vec::new(),
        });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.actor(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers, 3);
    }

    #[test]
    fn unicast_to_non_neighbor_is_dropped() {
        struct Uni;
        impl Actor for Uni {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.unicast(NodeId(2), ()); // not a neighbor of 0
                    ctx.unicast(NodeId(1), ()); // neighbor
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Uni);
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.unicasts, 2);
        assert_eq!(stats.dropped_unicasts, 1);
        assert_eq!(stats.deliveries, 1);
    }

    #[test]
    fn identical_seeds_identical_executions() {
        let run = |seed: u64| {
            let mut sim =
                Simulator::new(line3(), RadioConfig::default(), seed, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            (sim.stats(), sim.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn jitter_stays_deterministic_per_seed() {
        let radio = RadioConfig {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(5),
            ..RadioConfig::default()
        };
        let run = |seed: u64| {
            let mut sim = Simulator::new(line3(), radio, seed, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            sim.stats()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn scheduled_link_down_stops_delivery() {
        // Flood at t=0 crosses 0—1; a link-down at t=500ms prevents a
        // second flood wave started at t=1s from crossing it.
        struct Waves {
            got: u32,
        }
        impl Actor for Waves {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                    ctx.set_timer(SimDuration::from_secs(1), TimerId(1));
                }
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _t: TimerId) {
                ctx.broadcast(());
            }
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {
                self.got += 1;
            }
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Waves { got: 0 });
        sim.schedule_world(
            SimTime::from_micros(500_000),
            WorldEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.actor(NodeId(1)).got, 1, "second wave must not cross");
        assert_eq!(sim.stats().world_changes, 1);
        assert!(!sim.world().has_link(NodeId(0), NodeId(1)));
    }

    #[test]
    fn leave_cancels_timers_and_join_restarts() {
        struct Ticker {
            started: u32,
            ticks: u32,
            reset: u32,
        }
        impl Actor for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                self.started += 1;
                ctx.set_timer(SimDuration::from_millis(100), TimerId(1));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _t: TimerId) {
                self.ticks += 1;
                ctx.set_timer(SimDuration::from_millis(100), TimerId(1));
            }
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_reset(&mut self) {
                self.reset += 1;
                self.ticks = 0;
            }
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Ticker {
            started: 0,
            ticks: 0,
            reset: 0,
        });
        // Node 2 leaves at 250 ms and rejoins at 1 s.
        sim.schedule_world(
            SimTime::from_micros(250_000),
            WorldEvent::Leave { node: NodeId(2) },
        );
        sim.schedule_world(
            SimTime::from_micros(1_000_000),
            WorldEvent::Join { node: NodeId(2) },
        );
        sim.run_for(SimDuration::from_secs(2));

        let t = sim.actor(NodeId(2));
        assert_eq!(t.reset, 1, "rejoin must reset the actor");
        assert_eq!(t.started, 2, "on_start runs again after rejoin");
        // Second life ran from 1 s to 2 s: 10 ticks; the first life's
        // pending timer was cancelled (ticks was zeroed by on_reset).
        assert_eq!(t.ticks, 10);
        assert!(sim.stats().stale_dropped >= 1);
        // The world dropped 1—2 on leave; rejoin comes back isolated.
        assert!(!sim.world().has_link(NodeId(1), NodeId(2)));
        assert!(sim.world().is_active(NodeId(2)));
    }

    #[test]
    fn context_measures_current_link_qos() {
        struct Probe;
        impl Actor for Probe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(1) {
                    assert_eq!(ctx.link_qos(NodeId(0)), Some(LinkQos::uniform(1)));
                    assert_eq!(ctx.link_qos(NodeId(1)), None);
                    assert_eq!(ctx.radio_neighbors().len(), 2);
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Probe);
        sim.run_for(SimDuration::from_secs(1));
    }

    /// A world mutation landing while a frame is in flight must be
    /// visible to the delivery handler: `Context::link_qos` reads the
    /// world at *receive* time, never a snapshot taken at broadcast.
    /// The measured-QoS protocol path stamps link tuples from exactly
    /// this call, so a stale read would poison neighbor tables for a
    /// full HELLO interval.
    #[test]
    fn delivery_handler_sees_world_at_receive_time() {
        #[derive(Default)]
        struct QosProbe {
            seen: Vec<Option<LinkQos>>,
        }
        impl Actor for QosProbe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.broadcast(());
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, from: NodeId, _m: ()) {
                self.seen.push(ctx.link_qos(from));
            }
        }
        // Broadcast leaves node 0 at t = 0; the frame lands at t = 1 ms
        // (default latency). The 0—1 QoS drifts at 0.5 ms, mid-flight.
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| QosProbe::default());
        sim.schedule_world(
            SimTime::from_micros(500),
            WorldEvent::QosChange {
                a: NodeId(0),
                b: NodeId(1),
                qos: LinkQos::uniform(7),
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.actor(NodeId(1)).seen,
            vec![Some(LinkQos::uniform(7))],
            "handler must measure the drifted QoS, not the broadcast-time value"
        );
        // Same flight, but the carrying link is gone by receive time:
        // the handler must see its absence (the in-flight frame itself
        // still arrives — only Leave cancels deliveries).
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| QosProbe::default());
        sim.schedule_world(
            SimTime::from_micros(500),
            WorldEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.actor(NodeId(1)).seen,
            vec![None],
            "handler must see the mid-flight link loss"
        );
    }

    #[test]
    fn world_events_replay_identically() {
        let run = |seed: u64| {
            let mut sim =
                Simulator::new(line3(), RadioConfig::default(), seed, |_| Flood::default());
            sim.schedule_world(
                SimTime::from_micros(100),
                WorldEvent::LinkDown {
                    a: NodeId(1),
                    b: NodeId(2),
                },
            );
            sim.schedule_world(
                SimTime::from_micros(200),
                WorldEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(2),
                    qos: LinkQos::uniform(2),
                },
            );
            sim.run_for(SimDuration::from_secs(1));
            (sim.stats(), sim.world().link_count())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn run_until_never_rewinds_time() {
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Flood::default());
        sim.run_for(SimDuration::from_secs(10));
        let now = sim.now();
        sim.run_until(SimTime::from_micros(5));
        assert_eq!(sim.now(), now, "past deadline must be a no-op");
    }

    #[test]
    fn wheel_and_heap_schedulers_replay_identically() {
        let run = |kind: SchedulerKind| {
            let mut sim = Simulator::with_scheduler(
                line3(),
                RadioConfig {
                    latency: SimDuration::from_millis(1),
                    jitter: SimDuration::from_millis(3),
                    ..RadioConfig::default()
                },
                11,
                kind,
                |_| Flood::default(),
            );
            sim.schedule_world(
                SimTime::from_micros(400_000),
                WorldEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            );
            // A far-future world event exercises the wheel's overflow
            // heap fallback.
            sim.schedule_world(
                SimTime::ZERO + SimDuration::from_secs(120),
                WorldEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(2),
                    qos: LinkQos::uniform(3),
                },
            );
            sim.run_for(SimDuration::from_secs(200));
            (
                sim.stats(),
                sim.now(),
                sim.world().link_count(),
                sim.actor(NodeId(1)).heard_from.clone(),
            )
        };
        assert_eq!(
            run(SchedulerKind::TimerWheel),
            run(SchedulerKind::BinaryHeap)
        );
    }

    fn lossy(edge_drop_ppm: u32) -> RadioConfig {
        RadioConfig {
            phy: PhyModel::Lossy(LossyPhy::with_edge_drop_ppm(edge_drop_ppm)),
            ..RadioConfig::default()
        }
    }

    #[test]
    fn drop_probability_curve_shape() {
        let phy = LossyPhy::with_edge_drop_ppm(400_000);
        assert_eq!(phy.drop_probability(0.0, 10.0), 0.0);
        assert_eq!(phy.drop_probability(10.0, 10.0), 0.4);
        assert_eq!(phy.drop_probability(5.0, 10.0), 0.1); // (1/2)² of the edge
        assert_eq!(phy.drop_probability(25.0, 10.0), 0.4, "clamped past range");
        assert_eq!(phy.drop_probability(3.0, 0.0), 0.4, "degenerate radius");
    }

    #[test]
    fn ideal_phy_draws_no_randomness() {
        // An Ideal run and a Lossy run at drop probability zero must
        // leave the actor-visible world identical: loss sampling comes
        // from dedicated streams, never the engine or actor streams.
        let run = |radio: RadioConfig| {
            let mut sim = Simulator::new(line3(), radio, 9, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            (sim.stats(), sim.actor(NodeId(1)).heard_from.clone())
        };
        let ideal = run(RadioConfig::default());
        let zero_loss = run(lossy(0));
        assert_eq!(ideal.1, zero_loss.1);
        assert_eq!(ideal.0.deliveries, zero_loss.0.deliveries);
        assert_eq!(zero_loss.0.phy_drops, 0);
    }

    #[test]
    fn certain_edge_loss_silences_the_channel() {
        // Two nodes exactly one radio range apart: edge_drop = 1e6 puts
        // the hop at drop probability 1, so nothing ever arrives.
        let mut b = TopologyBuilder::new(10.0);
        let n0 = b.add_node(Point2::new(0.0, 0.0));
        let n1 = b.add_node(Point2::new(10.0, 0.0));
        b.link(n0, n1, LinkQos::uniform(1)).unwrap();
        let mut sim = Simulator::new(b.build(), lossy(1_000_000), 5, |_| Flood::default());
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.deliveries, 0, "edge hop must always drop");
        assert_eq!(stats.phy_drops, 1);
        assert!(!sim.actor(NodeId(1)).seen);
    }

    #[test]
    fn lossy_runs_replay_identically_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(line3(), lossy(500_000), seed, |_| Flood::default());
            sim.run_for(SimDuration::from_secs(1));
            (sim.stats(), sim.actor(NodeId(1)).heard_from.clone())
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn capture_window_collides_overlapping_deliveries() {
        // Both 0 and 2 broadcast at t=0; node 1 receives two frames at
        // the same instant. With a capture window the second collides.
        struct TwoTalkers;
        impl Actor for TwoTalkers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() != NodeId(1) {
                    ctx.broadcast(());
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, _c: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
        }
        let radio = RadioConfig {
            phy: PhyModel::Lossy(LossyPhy {
                edge_drop_ppm: 0,
                exponent: 2,
                capture_window: SimDuration::from_micros(200),
            }),
            ..RadioConfig::default()
        };
        let mut sim = Simulator::new(line3(), radio, 1, |_| TwoTalkers);
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.collisions, 1, "second frame at node 1 collides");
        assert_eq!(stats.deliveries, 1);
        // Without the window both frames arrive.
        let mut sim = Simulator::new(line3(), lossy(0), 1, |_| TwoTalkers);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.stats().collisions, 0);
        assert_eq!(sim.stats().deliveries, 2);
    }

    #[test]
    fn trace_records_dispatches() {
        let mut sim = Simulator::new(line3(), RadioConfig::default(), 1, |_| Flood::default());
        sim.enable_trace(16);
        sim.run_for(SimDuration::from_secs(1));
        let trace = sim.trace().unwrap();
        assert!(trace.total_recorded() > 0);
        assert!(trace.iter().next().is_some());
    }
}
