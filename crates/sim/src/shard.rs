//! Region-sharded parallel execution of the discrete-event engine.
//!
//! [`ShardedSimulator`] partitions the node population into `K` shards by
//! vertical stripes over the deployment's x-extent (the same spatial
//! locality the grid-based neighbor discovery exploits), gives each shard
//! a private [`EventQueue`] timer wheel, and advances virtual time in
//! bounded windows:
//!
//! * **Parallel phase** — every shard with work due in the window
//!   `[t0, t1)` steps on its own scoped thread (`crossbeam::thread::scope`
//!   from `vendor/`). The window width never exceeds the radio latency,
//!   so a delivery emitted inside a window is always due at or after the
//!   window's end — shards can run a whole window without observing each
//!   other. Self-timers that land inside the window execute locally under
//!   *provisional* sequence numbers (high bit set).
//! * **Barrier** — each shard hands back its dispatch log plus the
//!   deliveries and post-window timers it produced. A k-way merge walks
//!   the logs in globally sorted `(time, seq)` order — each shard's log
//!   is already sorted, because local dispatch order equals the serial
//!   order restricted to that shard — assigns exact sequence numbers to
//!   every newly created event in that order (resolving the provisional
//!   ones), routes deliveries to their receivers' home shards, and
//!   appends dispatch records to the trace. The observable schedule is
//!   therefore identical to the single-queue [`Simulator`](crate::Simulator).
//! * **Serial instants** — scheduled [`WorldEvent`]s and the run deadline
//!   are barriers by construction: everything due at such an instant is
//!   dispatched serially in exact `(time, seq)` order (including
//!   zero-delay effect chains), and a rejoining node is re-homed to the
//!   shard covering its current position ([`Actor::on_rehome`] runs after
//!   [`Actor::on_reset`]). A zero-latency radio degrades every instant to
//!   this serial path — correct, but with nothing left to parallelize.
//!
//! # Determinism contract
//!
//! With zero radio jitter (the [`RadioConfig`] default), a run is
//! **byte-identical** to [`Simulator`](crate::Simulator) under the same seed — engine
//! stats, dispatch traces, per-node RNG streams and actor end states —
//! for *any* shard count; `tests/shard_differential.rs` pins this
//! against the single-queue reference. Two intentional divergences:
//! with `jitter > 0` delivery jitter is drawn from per-node streams (in
//! deterministic send order, so runs stay seed-reproducible and
//! shard-count-invariant) instead of the single engine stream, and
//! [`Context::stop`] takes effect at the next barrier rather than
//! mid-window.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::iter::Peekable;

use qolsr_graph::{DynamicTopology, NodeId, Point2, Topology, WorldEvent};

use crate::engine::{
    corrupt_in_flight, corrupt_streams, loss_streams, phy_collides, phy_drops_frame, Actor,
    Context, Effect, EventKind, FrameCorruption, InFlight, PhyModel, RadioConfig, Scheduled,
    SimStats, TimerId,
};
use crate::queue::{EventQueue, SchedulerKind};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// How a simulation executes: the single-queue reference engine, or the
/// region-sharded parallel engine with a deterministic barrier merge.
///
/// `SingleShard` (the default) is [`Simulator`](crate::Simulator), the differential
/// reference every optimization in this workspace is pinned against.
/// `Sharded { shards }` partitions nodes into `shards` spatial stripes
/// and steps them in parallel windows; with zero radio jitter its
/// observable schedule is byte-identical to the reference for any shard
/// count (see the [module docs](self) for the contract).
///
/// # Examples
///
/// A seeded two-shard run replays the single-queue engine exactly:
///
/// ```
/// use qolsr_graph::{NodeId, Point2, TopologyBuilder};
/// use qolsr_metrics::LinkQos;
/// use qolsr_sim::{
///     Actor, Context, ExecMode, RadioConfig, ShardedSimulator, SimDuration, Simulator, TimerId,
/// };
///
/// struct Beacon;
/// impl Actor for Beacon {
///     type Msg = u32;
///     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
///         ctx.broadcast(ctx.node_id().0);
///         ctx.set_timer(SimDuration::from_millis(100), TimerId(0));
///     }
///     fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _t: TimerId) {
///         ctx.broadcast(ctx.node_id().0);
///         ctx.set_timer(SimDuration::from_millis(100), TimerId(0));
///     }
///     fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: NodeId, _msg: u32) {}
/// }
///
/// let mut b = TopologyBuilder::new(10.0);
/// let n0 = b.add_node(Point2::new(0.0, 0.0));
/// let n1 = b.add_node(Point2::new(5.0, 0.0));
/// let n2 = b.add_node(Point2::new(9.0, 0.0));
/// b.link(n0, n1, LinkQos::uniform(1)).unwrap();
/// b.link(n1, n2, LinkQos::uniform(1)).unwrap();
/// let topo = b.build();
///
/// assert_eq!(ExecMode::default(), ExecMode::SingleShard);
/// let mode = ExecMode::Sharded { shards: 2 };
///
/// let mut single = Simulator::new(topo.clone(), RadioConfig::default(), 7, |_| Beacon);
/// single.run_for(SimDuration::from_secs(2));
///
/// let mut sharded =
///     ShardedSimulator::new(topo, RadioConfig::default(), 7, mode.shards(), |_, _| Beacon);
/// sharded.run_for(SimDuration::from_secs(2));
///
/// assert_eq!(single.stats(), sharded.stats());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The single-queue engine ([`Simulator`](crate::Simulator)) — the differential
    /// reference.
    #[default]
    SingleShard,
    /// The region-sharded engine ([`ShardedSimulator`]) with the given
    /// shard count (clamped to at least 1).
    Sharded {
        /// Number of spatial shards.
        shards: u32,
    },
}

impl ExecMode {
    /// The shard count this mode runs with (`1` for `SingleShard`).
    pub fn shards(&self) -> u32 {
        match self {
            ExecMode::SingleShard => 1,
            ExecMode::Sharded { shards } => (*shards).max(1),
        }
    }
}

/// Marker bit of a provisional in-window sequence number. Provisional
/// numbers sort after every committed number at the same instant — which
/// matches the serial engine, where an event created in the current
/// window necessarily receives a larger sequence number than anything
/// scheduled before the window started.
const PROVISIONAL: u64 = 1 << 63;

/// Static x-stripe partition of the deployment area. A node's *home
/// shard* is the stripe covering its current position; re-homing happens
/// only when a node rejoins after churn (scheduling locality is a
/// performance concern, not a correctness one, so plain motion does not
/// migrate actors mid-life).
#[derive(Debug, Clone, Copy)]
struct RegionMap {
    min_x: f64,
    /// `shards / width` of the initial deployment's x-extent; `0.0`
    /// collapses everything into shard 0 (single shard or degenerate
    /// deployment).
    inv_stripe: f64,
    shards: u32,
}

impl RegionMap {
    fn new(world: &DynamicTopology, shards: usize) -> Self {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        for node in world.nodes() {
            let x = world.position(node).x;
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        let width = max_x - min_x;
        let usable = width.is_finite() && width > 0.0 && shards > 1;
        Self {
            min_x: if min_x.is_finite() { min_x } else { 0.0 },
            inv_stripe: if usable { shards as f64 / width } else { 0.0 },
            shards: shards as u32,
        }
    }

    fn shard_of(&self, p: Point2) -> usize {
        if self.inv_stripe == 0.0 {
            return 0;
        }
        let stripe = ((p.x - self.min_x) * self.inv_stripe).floor();
        (stripe.max(0.0) as usize).min(self.shards as usize - 1)
    }
}

/// One dispatch performed inside a parallel window, in local order.
#[derive(Clone, Copy)]
struct DispatchRecord {
    time: SimTime,
    /// The dispatched event's sequence number — exact, or provisional
    /// (high bit) for a timer that was both created and fired within the
    /// window.
    seq: u64,
    node: NodeId,
    /// Exclusive end index of this record's children in the shard's
    /// flat child log (the start is the previous record's end).
    children_end: u32,
}

/// An event created inside a parallel window, awaiting its exact
/// sequence number at the barrier.
enum Child<M> {
    /// A self-timer due within the window: already pushed into the local
    /// queue under the next provisional number; the barrier walk maps
    /// that number to an exact one.
    LocalTimer,
    /// A self-timer due at or after the window end.
    Timer {
        at: SimTime,
        timer: TimerId,
        generation: u32,
    },
    /// A radio delivery (always due at or after the window end, because
    /// the window is narrower than the radio latency).
    Deliver {
        at: SimTime,
        to: NodeId,
        from: NodeId,
        msg: M,
        generation: u32,
    },
}

/// One spatial shard: its member actors and their RNG streams, a private
/// event queue, and the per-window logs the barrier consumes.
struct Shard<A: Actor> {
    queue: EventQueue<Scheduled<A::Msg>>,
    /// Member node ids; `actors[i]`, `rngs[i]` and `jitter_rngs[i]`
    /// belong to `members[i]`.
    members: Vec<NodeId>,
    actors: Vec<A>,
    rngs: Vec<SimRng>,
    /// Per-node delivery-jitter streams (split from the engine seed in
    /// node order). Unused when the radio has zero jitter.
    jitter_rngs: Vec<SimRng>,
    /// Per-node PHY loss streams (split from `seed ^ LOSS_STREAM_SALT`
    /// in node order, exactly as in the single-queue engine). Empty
    /// under [`PhyModel::Ideal`].
    loss_rngs: Vec<SimRng>,
    /// Per-node frame-corruption streams (split from
    /// `seed ^ CORRUPT_STREAM_SALT` in node order, exactly as in the
    /// single-queue engine). Empty under [`FrameCorruption::Off`].
    corrupt_rngs: Vec<SimRng>,
    /// Per-node receiver-capture state for the collision model; empty
    /// unless the PHY is lossy.
    busy_until: Vec<SimTime>,
    /// Window dispatch log, in local dispatch order.
    records: Vec<DispatchRecord>,
    /// Flat per-record child log (see [`DispatchRecord::children_end`]).
    children: Vec<Child<A::Msg>>,
    /// Provisional number -> exact number, filled by the barrier walk in
    /// provisional-assignment order.
    prov_map: Vec<u64>,
    /// Effect scratch buffer for handler invocations.
    effects: Vec<Effect<A::Msg>>,
    /// Stats accumulated during the current window; folded into the
    /// global counters at the barrier (all fields are order-independent
    /// sums).
    window_stats: SimStats,
    /// Set when a handler called [`Context::stop`]; honored at the
    /// barrier.
    stop: bool,
}

impl<A: Actor> Shard<A> {
    fn new(scheduler: SchedulerKind) -> Self {
        Self {
            queue: EventQueue::new(scheduler),
            members: Vec::new(),
            actors: Vec::new(),
            rngs: Vec::new(),
            jitter_rngs: Vec::new(),
            loss_rngs: Vec::new(),
            corrupt_rngs: Vec::new(),
            busy_until: Vec::new(),
            records: Vec::new(),
            children: Vec::new(),
            prov_map: Vec::new(),
            effects: Vec::new(),
            window_stats: SimStats::default(),
            stop: false,
        }
    }
}

/// A scheduled world event; kept outside the shard queues because world
/// mutation is a global barrier. Ordered by `(time, seq)` like every
/// other event.
struct WorldItem {
    time: SimTime,
    seq: u64,
    event: WorldEvent,
}

impl PartialEq for WorldItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for WorldItem {}
impl PartialOrd for WorldItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorldItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Per-sender delivery delay. The serial engine draws jitter from the
/// single engine stream in global dispatch order; here each sender owns a
/// stream, so draws are deterministic in the sender's send order and
/// independent of the shard count.
fn delivery_delay(radio: RadioConfig, jitter_rng: &mut SimRng) -> SimDuration {
    let jitter_us = radio.jitter.as_micros();
    if jitter_us == 0 {
        radio.latency
    } else {
        radio.latency + SimDuration::from_micros(jitter_rng.next_below(jitter_us))
    }
}

/// Runs one shard through the window `[its next due, end)`. Reads shared
/// world/generation/location state (all frozen between barriers), mutates
/// only the shard itself.
fn run_window<A: Actor>(
    shard: &mut Shard<A>,
    world: &DynamicTopology,
    generations: &[u32],
    locs: &[(u32, u32)],
    radio: RadioConfig,
    end: u64,
) {
    debug_assert!(shard.records.is_empty() && shard.children.is_empty());
    let mut prov: u64 = 0;
    while !shard.stop && shard.queue.next_due().is_some_and(|due| due < end) {
        let ev = shard.queue.pop().expect("due item present");
        let node = ev.node;
        shard.window_stats.events += 1;
        if ev.generation != generations[node.index()] {
            shard.window_stats.stale_dropped += 1;
            if let EventKind::Deliver { msg, .. } = &ev.kind {
                if A::is_data(msg) {
                    shard.window_stats.data_stale_drops += 1;
                }
            }
            continue;
        }
        let slot = locs[node.index()].1 as usize;
        debug_assert_eq!(shard.members[slot], node);
        // An active partition drops cross-cut frames at dispatch, before
        // the capture window — exactly as in `Simulator::step`. World
        // events are barriers, so the cut is frozen for the whole
        // window and this check commutes with the merge.
        if let EventKind::Deliver { from, msg } = &ev.kind {
            if world.partitioned(*from, node) {
                shard.window_stats.partition_drops += 1;
                if A::is_data(msg) {
                    shard.window_stats.data_partition_drops += 1;
                }
                continue;
            }
        }
        // Receiver capture, exactly as in `Simulator::step`: a frame
        // landing inside the busy window collides before the actor sees
        // it. Receiver state is shard-local, so this commutes with the
        // barrier (a node's deliveries always dispatch on its home
        // shard, in global `(time, seq)` order).
        if let EventKind::Deliver { msg, .. } = &ev.kind {
            if !shard.busy_until.is_empty()
                && phy_collides(radio.phy, ev.time, &mut shard.busy_until[slot])
            {
                shard.window_stats.collisions += 1;
                if A::is_data(msg) {
                    shard.window_stats.data_collisions += 1;
                }
                continue;
            }
        }
        shard.effects.clear();
        {
            let mut ctx = Context {
                now: ev.time,
                node,
                world,
                rng: &mut shard.rngs[slot],
                effects: &mut shard.effects,
                stop: &mut shard.stop,
            };
            let actor = &mut shard.actors[slot];
            match ev.kind {
                EventKind::Start => actor.on_start(&mut ctx),
                EventKind::Timer(t) => {
                    shard.window_stats.timers += 1;
                    actor.on_timer(&mut ctx, t);
                }
                EventKind::Deliver { from, msg } => {
                    shard.window_stats.deliveries += 1;
                    if A::is_data(&msg) {
                        shard.window_stats.data_deliveries += 1;
                    }
                    actor.on_message(&mut ctx, from, msg);
                }
                EventKind::World(_) => unreachable!("world events are barriers"),
            }
        }
        for effect in shard.effects.drain(..) {
            match effect {
                Effect::Broadcast(msg) => {
                    shard.window_stats.broadcasts += 1;
                    for (to, _) in world.neighbors(node) {
                        if !shard.loss_rngs.is_empty()
                            && phy_drops_frame(
                                radio.phy,
                                world,
                                node,
                                to,
                                &mut shard.loss_rngs[slot],
                            )
                        {
                            shard.window_stats.phy_drops += 1;
                            continue;
                        }
                        let payload = match corrupt_in_flight::<A>(
                            radio.corruption,
                            &mut shard.corrupt_rngs,
                            slot,
                            &msg,
                            &mut shard.window_stats,
                        ) {
                            InFlight::Intact => msg.clone(),
                            InFlight::Damaged(damaged) => damaged,
                            InFlight::DroppedByFcs => continue,
                        };
                        let delay = delivery_delay(radio, &mut shard.jitter_rngs[slot]);
                        shard.children.push(Child::Deliver {
                            at: ev.time + delay,
                            to,
                            from: node,
                            msg: payload,
                            generation: generations[to.index()],
                        });
                    }
                }
                Effect::Unicast(to, msg) => {
                    shard.window_stats.unicasts += 1;
                    let is_data = A::is_data(&msg);
                    if is_data {
                        shard.window_stats.data_unicasts += 1;
                    }
                    if world.has_link(node, to) {
                        if !shard.loss_rngs.is_empty()
                            && phy_drops_frame(
                                radio.phy,
                                world,
                                node,
                                to,
                                &mut shard.loss_rngs[slot],
                            )
                        {
                            shard.window_stats.phy_drops += 1;
                            if is_data {
                                shard.window_stats.data_phy_drops += 1;
                            }
                        } else {
                            let payload = match corrupt_in_flight::<A>(
                                radio.corruption,
                                &mut shard.corrupt_rngs,
                                slot,
                                &msg,
                                &mut shard.window_stats,
                            ) {
                                InFlight::Intact => msg,
                                InFlight::Damaged(damaged) => damaged,
                                InFlight::DroppedByFcs => {
                                    if is_data {
                                        shard.window_stats.data_fcs_drops += 1;
                                    }
                                    continue;
                                }
                            };
                            let delay = delivery_delay(radio, &mut shard.jitter_rngs[slot]);
                            shard.children.push(Child::Deliver {
                                at: ev.time + delay,
                                to,
                                from: node,
                                msg: payload,
                                generation: generations[to.index()],
                            });
                        }
                    } else {
                        shard.window_stats.dropped_unicasts += 1;
                        if is_data {
                            shard.window_stats.data_no_link_drops += 1;
                        }
                    }
                }
                Effect::Timer(after, timer) => {
                    let at = ev.time + after;
                    if at.as_micros() < end {
                        shard.queue.push(Scheduled {
                            time: at,
                            seq: PROVISIONAL | prov,
                            node,
                            generation: ev.generation,
                            kind: EventKind::Timer(timer),
                        });
                        prov += 1;
                        shard.children.push(Child::LocalTimer);
                    } else {
                        shard.children.push(Child::Timer {
                            at,
                            timer,
                            generation: ev.generation,
                        });
                    }
                }
            }
        }
        shard.records.push(DispatchRecord {
            time: ev.time,
            seq: ev.seq,
            node,
            children_end: shard.children.len() as u32,
        });
    }
}

/// The region-sharded parallel engine. See the [module docs](self) for
/// the window/barrier algorithm and the determinism contract; see
/// [`ExecMode`] for a doctest proving two-shard/single-queue parity.
pub struct ShardedSimulator<A: Actor> {
    world: DynamicTopology,
    radio: RadioConfig,
    region: RegionMap,
    shards: Vec<Shard<A>>,
    /// Per node: `(home shard, slot within the shard)`.
    locs: Vec<(u32, u32)>,
    /// Per-node lifetime counters, as in [`Simulator`](crate::Simulator). Only mutated at
    /// barriers, so shard workers may read them as a frozen slice.
    generations: Vec<u32>,
    world_queue: BinaryHeap<WorldItem>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    stop: bool,
    trace: Option<TraceBuffer>,
    /// Parallel-window width in µs; at most the radio latency (the
    /// lookahead bound), `0` iff the latency is zero (serial instants
    /// only).
    window_micros: u64,
    /// Scratch for the serial-instant batch.
    instant_scratch: Vec<Scheduled<A::Msg>>,
}

impl<A: Actor + Send> ShardedSimulator<A>
where
    A::Msg: Send,
{
    /// Creates a sharded simulator over `topology` with `shards` spatial
    /// stripes (clamped to `1..=node count`), building one actor per node
    /// with `build(node, home_shard)` in node-id order, and schedules
    /// every actor's start event at time 0.
    pub fn new(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        shards: u32,
        build: impl FnMut(NodeId, usize) -> A,
    ) -> Self {
        Self::with_scheduler(
            topology,
            radio,
            seed,
            SchedulerKind::default(),
            shards,
            build,
        )
    }

    /// Like [`ShardedSimulator::new`] with an explicit per-shard queue
    /// scheduler (see [`Simulator::with_scheduler`](crate::Simulator::with_scheduler)).
    pub fn with_scheduler(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        scheduler: SchedulerKind,
        shards: u32,
        mut build: impl FnMut(NodeId, usize) -> A,
    ) -> Self {
        let mut engine_rng = SimRng::seed_from_u64(seed);
        let n = topology.len();
        let k = (shards.max(1) as usize).min(n.max(1));
        let world = DynamicTopology::new(&topology);
        let region = RegionMap::new(&world, k);

        // Mirror the single-queue construction order exactly: actors in
        // node order first, then one RNG split per node. The extra
        // jitter streams are split afterwards so node RNG streams stay
        // byte-identical to `Simulator`'s.
        let actors: Vec<A> = topology
            .nodes()
            .map(|id| build(id, region.shard_of(world.position(id))))
            .collect();
        let rngs: Vec<SimRng> = (0..n).map(|_| engine_rng.split()).collect();
        let jitter_rngs: Vec<SimRng> = (0..n).map(|_| engine_rng.split()).collect();
        // Same derivation as the single-queue engine: one loss stream
        // per node in node order, from the salted loss master. Empty
        // (and never consulted) under the ideal PHY.
        let mut loss_iter = loss_streams(seed, n, radio.phy).into_iter();
        let lossy = matches!(radio.phy, PhyModel::Lossy(_));
        // Likewise for the corruption streams: same salted master, same
        // per-node split order as the single-queue engine. Empty (and
        // never consulted) under `FrameCorruption::Off`.
        let mut corrupt_iter = corrupt_streams(seed, n, radio.corruption).into_iter();
        let corrupting = matches!(radio.corruption, FrameCorruption::On(_));

        let mut shard_vec: Vec<Shard<A>> = (0..k).map(|_| Shard::new(scheduler)).collect();
        let mut locs = vec![(0u32, 0u32); n];
        for (((i, actor), rng), jitter) in actors.into_iter().enumerate().zip(rngs).zip(jitter_rngs)
        {
            let node = NodeId(i as u32);
            let home = region.shard_of(world.position(node));
            let shard = &mut shard_vec[home];
            locs[i] = (home as u32, shard.members.len() as u32);
            shard.members.push(node);
            shard.actors.push(actor);
            shard.rngs.push(rng);
            shard.jitter_rngs.push(jitter);
            if lossy {
                shard
                    .loss_rngs
                    .push(loss_iter.next().expect("one loss stream per node"));
                shard.busy_until.push(SimTime::ZERO);
            }
            if corrupting {
                shard
                    .corrupt_rngs
                    .push(corrupt_iter.next().expect("one corruption stream per node"));
            }
        }

        let window_micros = radio.latency.as_micros();
        let mut sim = Self {
            world,
            radio,
            region,
            shards: shard_vec,
            locs,
            generations: vec![0; n],
            world_queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            stop: false,
            trace: None,
            window_micros,
            instant_scratch: Vec::new(),
        };
        for i in 0..n {
            sim.push_exact(SimTime::ZERO, NodeId(i as u32), EventKind::Start);
        }
        sim
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        debug_assert!(s < PROVISIONAL, "sequence space exhausted");
        s
    }

    /// Pushes an actor event with an exact sequence number into its
    /// node's home-shard queue.
    fn push_exact(&mut self, time: SimTime, node: NodeId, kind: EventKind<A::Msg>) {
        debug_assert!(!matches!(kind, EventKind::World(_)));
        let generation = self.generations[node.index()];
        let seq = self.next_seq();
        let home = self.locs[node.index()].0 as usize;
        self.shards[home].queue.push(Scheduled {
            time,
            seq,
            node,
            generation,
            kind,
        });
    }

    /// Schedules a world event for application at virtual time `at`
    /// (clamped to now), interleaved with actor events by `(time, seq)`
    /// exactly as in [`Simulator::schedule_world`](crate::Simulator::schedule_world). World instants are
    /// window barriers.
    pub fn schedule_world(&mut self, at: SimTime, event: WorldEvent) {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.world_queue.push(WorldItem {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules a stream of timed world events (e.g. a generated
    /// scenario schedule).
    pub fn schedule_world_events(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, WorldEvent)>,
    ) {
        for (at, ev) in events {
            self.schedule_world(at, ev);
        }
    }

    /// Enables event tracing with the given ring-buffer capacity. Trace
    /// records are emitted at barriers, in exact serial dispatch order.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine statistics so far (aggregated across shards at barriers).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The simulated world (current ground truth).
    pub fn world(&self) -> &DynamicTopology {
        &self.world
    }

    /// Mutable access to the world, for out-of-band mutation between
    /// `run_*` calls.
    pub fn world_mut(&mut self) -> &mut DynamicTopology {
        &mut self.world
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.locs.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn shard_of(&self, n: NodeId) -> usize {
        self.locs[n.index()].0 as usize
    }

    /// The shard whose x-stripe covers position `p` — where a node at
    /// `p` would be (re-)homed.
    pub fn shard_for_position(&self, p: Point2) -> usize {
        self.region.shard_of(p)
    }

    /// Member node ids of shard `shard`, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_members(&self, shard: usize) -> &[NodeId] {
        &self.shards[shard].members
    }

    /// Overrides the parallel-window width (testing support: the shard
    /// differential proptests sweep arbitrary widths). Clamped into
    /// `[1 µs, radio latency]` — wider than the latency would break the
    /// lookahead bound; with a zero-latency radio the width stays 0 and
    /// every instant runs serially.
    pub fn set_window(&mut self, window: SimDuration) {
        let latency = self.radio.latency.as_micros();
        self.window_micros = window.as_micros().clamp(1, latency.max(1)).min(latency);
    }

    /// Immutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor(&self, n: NodeId) -> &A {
        let (shard, slot) = self.locs[n.index()];
        &self.shards[shard as usize].actors[slot as usize]
    }

    /// Mutable access to the actor of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn actor_mut(&mut self, n: NodeId) -> &mut A {
        let (shard, slot) = self.locs[n.index()];
        &mut self.shards[shard as usize].actors[slot as usize]
    }

    /// Iterates over `(id, actor)` pairs in node-id order.
    pub fn actors(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.locs.iter().enumerate().map(|(i, &(shard, slot))| {
            (
                NodeId(i as u32),
                &self.shards[shard as usize].actors[slot as usize],
            )
        })
    }

    /// Runs until every queue drains, a handler requests a stop, or
    /// virtual time would exceed `deadline`; afterwards `now() ==
    /// deadline` unless stopped early. A deadline already in the past is
    /// a no-op.
    pub fn run_until(&mut self, deadline: SimTime) {
        let deadline = deadline.max(self.now);
        let dl = deadline.as_micros();
        while !self.stop {
            let next_actor = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.next_due())
                .min();
            let next_world = self.world_queue.peek().map(|w| w.time.as_micros());
            let next = match (next_actor, next_world) {
                (None, None) => break,
                (a, w) => a.unwrap_or(u64::MAX).min(w.unwrap_or(u64::MAX)),
            };
            if next > dl {
                break;
            }
            // The window may not cross the next world instant (a global
            // barrier) or extend past the deadline; `end <= next` means
            // the instant itself must run serially.
            let end = next
                .saturating_add(self.window_micros)
                .min(next_world.unwrap_or(u64::MAX))
                .min(dl.saturating_add(1));
            if end <= next {
                self.run_instant(SimTime::from_micros(next));
            } else {
                self.run_window_parallel(end);
                self.now = self.now.max(SimTime::from_micros(end - 1));
            }
        }
        if !self.stop {
            self.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Steps every shard with due work through `[its next due, end)` in
    /// parallel, then merges at the barrier.
    fn run_window_parallel(&mut self, end: u64) {
        {
            let world = &self.world;
            let generations = &self.generations[..];
            let locs = &self.locs[..];
            let radio = self.radio;
            let mut active: Vec<&mut Shard<A>> = Vec::new();
            for shard in self.shards.iter_mut() {
                if shard.queue.next_due().is_some_and(|due| due < end) {
                    active.push(shard);
                }
            }
            if active.len() <= 1 {
                for shard in active {
                    run_window(shard, world, generations, locs, radio, end);
                }
            } else {
                crossbeam::thread::scope(|scope| {
                    for shard in active.drain(..) {
                        scope.spawn(move |_| {
                            run_window(shard, world, generations, locs, radio, end)
                        });
                    }
                })
                .expect("shard worker panicked");
            }
        }
        self.barrier_merge();
    }

    /// K-way merges the shards' window logs in globally sorted
    /// `(time, seq)` order, assigning exact sequence numbers to every
    /// child event in that order and routing cross-shard deliveries to
    /// their receivers' queues. Reproduces the serial engine's trace and
    /// sequence assignment exactly.
    fn barrier_merge(&mut self) {
        let k = self.shards.len();
        let mut rec_cursor = vec![0usize; k];
        let mut child_cursor = vec![0usize; k];
        loop {
            let mut best: Option<(u64, u64, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let Some(rec) = shard.records.get(rec_cursor[i]) else {
                    continue;
                };
                // Resolve a provisional head: its parent record is
                // earlier in the same log, hence already walked.
                let seq = if rec.seq & PROVISIONAL != 0 {
                    shard.prov_map[(rec.seq & !PROVISIONAL) as usize]
                } else {
                    rec.seq
                };
                let key = (rec.time.as_micros(), seq);
                if best.is_none_or(|(t, s, _)| key < (t, s)) {
                    best = Some((key.0, key.1, i));
                }
            }
            let Some((_, _, i)) = best else { break };
            let rec = self.shards[i].records[rec_cursor[i]];
            rec_cursor[i] += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    time: rec.time,
                    node: rec.node,
                    kind: TraceKind::Dispatched,
                });
            }
            let start = child_cursor[i];
            let child_end = rec.children_end as usize;
            child_cursor[i] = child_end;
            for ci in start..child_end {
                // Move the child out; `LocalTimer` doubles as the cheap
                // placeholder so the log keeps its allocation.
                let child = std::mem::replace(&mut self.shards[i].children[ci], Child::LocalTimer);
                match child {
                    Child::LocalTimer => {
                        let exact = self.next_seq();
                        self.shards[i].prov_map.push(exact);
                    }
                    Child::Timer {
                        at,
                        timer,
                        generation,
                    } => {
                        let seq = self.next_seq();
                        self.shards[i].queue.push(Scheduled {
                            time: at,
                            seq,
                            node: rec.node,
                            generation,
                            kind: EventKind::Timer(timer),
                        });
                    }
                    Child::Deliver {
                        at,
                        to,
                        from,
                        msg,
                        generation,
                    } => {
                        let seq = self.next_seq();
                        let home = self.locs[to.index()].0 as usize;
                        self.shards[home].queue.push(Scheduled {
                            time: at,
                            seq,
                            node: to,
                            generation,
                            kind: EventKind::Deliver { from, msg },
                        });
                    }
                }
            }
        }
        for shard in &mut self.shards {
            let w = shard.window_stats;
            self.stats.events += w.events;
            self.stats.broadcasts += w.broadcasts;
            self.stats.unicasts += w.unicasts;
            self.stats.deliveries += w.deliveries;
            self.stats.dropped_unicasts += w.dropped_unicasts;
            self.stats.timers += w.timers;
            self.stats.world_changes += w.world_changes;
            self.stats.stale_dropped += w.stale_dropped;
            self.stats.phy_drops += w.phy_drops;
            self.stats.collisions += w.collisions;
            self.stats.partition_drops += w.partition_drops;
            self.stats.corrupted_frames += w.corrupted_frames;
            self.stats.fcs_drops += w.fcs_drops;
            self.stats.data_unicasts += w.data_unicasts;
            self.stats.data_deliveries += w.data_deliveries;
            self.stats.data_no_link_drops += w.data_no_link_drops;
            self.stats.data_phy_drops += w.data_phy_drops;
            self.stats.data_fcs_drops += w.data_fcs_drops;
            self.stats.data_partition_drops += w.data_partition_drops;
            self.stats.data_collisions += w.data_collisions;
            self.stats.data_stale_drops += w.data_stale_drops;
            shard.window_stats = SimStats::default();
            self.stop |= shard.stop;
            shard.records.clear();
            shard.children.clear();
            shard.prov_map.clear();
        }
    }

    /// Serially dispatches everything due at exactly `t` — world events
    /// interleaved with actor events by `(time, seq)`, including
    /// zero-delay effect chains landing back at `t` — with effects
    /// applied immediately under exact sequence numbers.
    fn run_instant(&mut self, t: SimTime) {
        self.now = t;
        let t_us = t.as_micros();
        let mut batch = std::mem::take(&mut self.instant_scratch);
        loop {
            if self.stop {
                break;
            }
            batch.clear();
            for shard in &mut self.shards {
                while shard.queue.next_due() == Some(t_us) {
                    batch.push(shard.queue.pop().expect("due item present"));
                }
            }
            let world_due = self.world_queue.peek().is_some_and(|w| w.time == t);
            if batch.is_empty() && !world_due {
                break;
            }
            batch.sort_unstable_by_key(|e| e.seq);
            let mut events = batch.drain(..).peekable();
            self.drain_instant(t, &mut events);
            // A stop mid-instant leaves pre-popped events unprocessed:
            // hand them back to their queues, as the serial engine would
            // have left them.
            for ev in events {
                let home = self.locs[ev.node.index()].0 as usize;
                self.shards[home].queue.push(ev);
            }
        }
        self.instant_scratch = batch;
    }

    /// Interleaves one sorted actor-event batch with the world events
    /// due at `t`, in `(time, seq)` order.
    fn drain_instant(
        &mut self,
        t: SimTime,
        events: &mut Peekable<std::vec::Drain<'_, Scheduled<A::Msg>>>,
    ) {
        loop {
            if self.stop {
                return;
            }
            let world_seq = self
                .world_queue
                .peek()
                .filter(|w| w.time == t)
                .map(|w| w.seq);
            let world_first = match (events.peek(), world_seq) {
                (None, None) => return,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(ev), Some(ws)) => ws < ev.seq,
            };
            if world_first {
                let item = self.world_queue.pop().expect("peeked world item");
                self.stats.events += 1;
                self.apply_world_event(item.event);
            } else {
                let ev = events.next().expect("peeked actor event");
                self.dispatch_serial(ev);
            }
        }
    }

    /// Dispatches one actor event serially (instant phase), applying its
    /// effects immediately with exact sequence numbers — the same code
    /// path shape as [`Simulator::step`](crate::Simulator::step).
    fn dispatch_serial(&mut self, ev: Scheduled<A::Msg>) {
        debug_assert_eq!(ev.seq & PROVISIONAL, 0, "instants only see exact seqs");
        self.stats.events += 1;
        let node = ev.node;
        if ev.generation != self.generations[node.index()] {
            self.stats.stale_dropped += 1;
            if let EventKind::Deliver { msg, .. } = &ev.kind {
                if A::is_data(msg) {
                    self.stats.data_stale_drops += 1;
                }
            }
            return;
        }
        let (shard_ix, slot) = self.locs[node.index()];
        let (shard_ix, slot) = (shard_ix as usize, slot as usize);
        // Active partitions drop cross-cut frames at dispatch, before
        // the capture window — same order as `Simulator::step`.
        if let EventKind::Deliver { from, msg } = &ev.kind {
            if self.world.partitioned(*from, node) {
                self.stats.partition_drops += 1;
                if A::is_data(msg) {
                    self.stats.data_partition_drops += 1;
                }
                return;
            }
        }
        if let EventKind::Deliver { msg, .. } = &ev.kind {
            let shard = &mut self.shards[shard_ix];
            if !shard.busy_until.is_empty()
                && phy_collides(self.radio.phy, ev.time, &mut shard.busy_until[slot])
            {
                self.stats.collisions += 1;
                if A::is_data(msg) {
                    self.stats.data_collisions += 1;
                }
                return;
            }
        }
        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        {
            let shard = &mut self.shards[shard_ix];
            let mut ctx = Context {
                now: ev.time,
                node,
                world: &self.world,
                rng: &mut shard.rngs[slot],
                effects: &mut effects,
                stop: &mut self.stop,
            };
            let actor = &mut shard.actors[slot];
            match ev.kind {
                EventKind::Start => actor.on_start(&mut ctx),
                EventKind::Timer(t) => {
                    self.stats.timers += 1;
                    actor.on_timer(&mut ctx, t);
                }
                EventKind::Deliver { from, msg } => {
                    self.stats.deliveries += 1;
                    if A::is_data(&msg) {
                        self.stats.data_deliveries += 1;
                    }
                    actor.on_message(&mut ctx, from, msg);
                }
                EventKind::World(_) => unreachable!("world events apply via apply_world_event"),
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                time: ev.time,
                node,
                kind: TraceKind::Dispatched,
            });
        }
        for effect in effects {
            match effect {
                Effect::Broadcast(msg) => {
                    self.stats.broadcasts += 1;
                    let neighbors: Vec<NodeId> =
                        self.world.neighbors(node).map(|(n, _)| n).collect();
                    for to in neighbors {
                        if self.phy_drops_serial(shard_ix, slot, node, to) {
                            continue;
                        }
                        let payload = match self.corrupt_serial(shard_ix, slot, &msg) {
                            InFlight::Intact => msg.clone(),
                            InFlight::Damaged(damaged) => damaged,
                            InFlight::DroppedByFcs => continue,
                        };
                        let delay = delivery_delay(
                            self.radio,
                            &mut self.shards[shard_ix].jitter_rngs[slot],
                        );
                        self.push_exact(
                            ev.time + delay,
                            to,
                            EventKind::Deliver {
                                from: node,
                                msg: payload,
                            },
                        );
                    }
                }
                Effect::Unicast(to, msg) => {
                    self.stats.unicasts += 1;
                    let is_data = A::is_data(&msg);
                    if is_data {
                        self.stats.data_unicasts += 1;
                    }
                    if self.world.has_link(node, to) {
                        if self.phy_drops_serial(shard_ix, slot, node, to) {
                            if is_data {
                                self.stats.data_phy_drops += 1;
                            }
                            continue;
                        }
                        let payload = match self.corrupt_serial(shard_ix, slot, &msg) {
                            InFlight::Intact => msg,
                            InFlight::Damaged(damaged) => damaged,
                            InFlight::DroppedByFcs => {
                                if is_data {
                                    self.stats.data_fcs_drops += 1;
                                }
                                continue;
                            }
                        };
                        let delay = delivery_delay(
                            self.radio,
                            &mut self.shards[shard_ix].jitter_rngs[slot],
                        );
                        self.push_exact(
                            ev.time + delay,
                            to,
                            EventKind::Deliver {
                                from: node,
                                msg: payload,
                            },
                        );
                    } else {
                        self.stats.dropped_unicasts += 1;
                        if is_data {
                            self.stats.data_no_link_drops += 1;
                        }
                    }
                }
                Effect::Timer(after, timer) => {
                    self.push_exact(ev.time + after, node, EventKind::Timer(timer));
                }
            }
        }
    }

    /// Serial-instant counterpart of the in-window drop sampling: one
    /// draw from the sender's loss stream per delivery attempt, counted
    /// into the global stats directly.
    fn phy_drops_serial(&mut self, shard_ix: usize, slot: usize, from: NodeId, to: NodeId) -> bool {
        let shard = &mut self.shards[shard_ix];
        if shard.loss_rngs.is_empty() {
            return false;
        }
        let dropped = phy_drops_frame(
            self.radio.phy,
            &self.world,
            from,
            to,
            &mut shard.loss_rngs[slot],
        );
        if dropped {
            self.stats.phy_drops += 1;
        }
        dropped
    }

    /// Serial-instant counterpart of the in-window corruption sampling:
    /// one gate draw from the sender's corruption stream per surviving
    /// delivery attempt, counted into the global stats directly.
    fn corrupt_serial(&mut self, shard_ix: usize, slot: usize, msg: &A::Msg) -> InFlight<A::Msg> {
        let shard = &mut self.shards[shard_ix];
        corrupt_in_flight::<A>(
            self.radio.corruption,
            &mut shard.corrupt_rngs,
            slot,
            msg,
            &mut self.stats,
        )
    }

    /// Applies one world event at a barrier: mutates the world, bumps
    /// generations on `Leave`, and on `Join` resets the actor, re-homes
    /// it to the shard covering its current position and restarts it —
    /// mirroring the serial engine plus the shard migration.
    fn apply_world_event(&mut self, event: WorldEvent) {
        let changed = self.world.apply(&event);
        if changed {
            self.stats.world_changes += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    time: self.now,
                    node: match event {
                        WorldEvent::LinkUp { a, .. }
                        | WorldEvent::LinkDown { a, .. }
                        | WorldEvent::QosChange { a, .. } => a,
                        WorldEvent::Move { node, .. }
                        | WorldEvent::Join { node }
                        | WorldEvent::Leave { node }
                        | WorldEvent::Crash { node } => node,
                        // Network-level faults have no single subject.
                        WorldEvent::Partition { .. } | WorldEvent::Heal => NodeId(0),
                    },
                    kind: TraceKind::WorldChanged,
                });
            }
        }
        match event {
            WorldEvent::Leave { node } if changed => {
                // Cancel the old life's pending timers and deliveries
                // (they may sit in the old home shard's queue; the
                // generation check drops them there).
                self.generations[node.index()] += 1;
            }
            WorldEvent::Join { node } if changed => {
                let (shard_ix, slot) = self.locs[node.index()];
                self.shards[shard_ix as usize].actors[slot as usize].on_reset();
                let dest = self.region.shard_of(self.world.position(node));
                self.rehome(node, dest);
                let (shard_ix, slot) = self.locs[node.index()];
                self.shards[shard_ix as usize].actors[slot as usize].on_rehome(shard_ix as usize);
                // No capture window survives a power cycle (mirrors the
                // single-queue engine's Join handling).
                if let Some(busy) = self.shards[shard_ix as usize]
                    .busy_until
                    .get_mut(slot as usize)
                {
                    *busy = SimTime::ZERO;
                }
                self.push_exact(self.now, node, EventKind::Start);
            }
            WorldEvent::Crash { node } if changed => {
                // Instant reboot, mirroring the single-queue engine: the
                // node keeps its position and links (no re-homing), but
                // the old life's events die by generation, the actor
                // wipes everything including sequence numbers, and the
                // start handler runs again in the new generation.
                self.generations[node.index()] += 1;
                let (shard_ix, slot) = self.locs[node.index()];
                self.shards[shard_ix as usize].actors[slot as usize].on_crash();
                if let Some(busy) = self.shards[shard_ix as usize]
                    .busy_until
                    .get_mut(slot as usize)
                {
                    *busy = SimTime::ZERO;
                }
                self.push_exact(self.now, node, EventKind::Start);
            }
            _ => {}
        }
    }

    /// Moves a node's actor and RNG streams to shard `dest` (no-op when
    /// already home). Only called at barriers, from `Join` handling; the
    /// node's pre-Leave events in the old shard are stale-generation and
    /// die there.
    fn rehome(&mut self, node: NodeId, dest: usize) {
        let (from, slot) = self.locs[node.index()];
        let (from, slot) = (from as usize, slot as usize);
        if from == dest {
            return;
        }
        let shard = &mut self.shards[from];
        debug_assert_eq!(shard.members[slot], node);
        let actor = shard.actors.swap_remove(slot);
        let rng = shard.rngs.swap_remove(slot);
        let jitter = shard.jitter_rngs.swap_remove(slot);
        let loss = (!shard.loss_rngs.is_empty()).then(|| {
            shard.busy_until.swap_remove(slot);
            shard.loss_rngs.swap_remove(slot)
        });
        let corrupt =
            (!shard.corrupt_rngs.is_empty()).then(|| shard.corrupt_rngs.swap_remove(slot));
        shard.members.swap_remove(slot);
        if slot < shard.members.len() {
            let moved = shard.members[slot];
            self.locs[moved.index()] = (from as u32, slot as u32);
        }
        let shard = &mut self.shards[dest];
        self.locs[node.index()] = (dest as u32, shard.members.len() as u32);
        shard.members.push(node);
        shard.actors.push(actor);
        shard.rngs.push(rng);
        shard.jitter_rngs.push(jitter);
        if let Some(loss) = loss {
            shard.loss_rngs.push(loss);
            shard.busy_until.push(SimTime::ZERO);
        }
        if let Some(corrupt) = corrupt {
            shard.corrupt_rngs.push(corrupt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use qolsr_graph::TopologyBuilder;
    use qolsr_metrics::LinkQos;

    /// A chatty actor exercising broadcasts, unicasts, periodic and
    /// zero-delay timers, per-node randomness and resets.
    #[derive(Default, Clone, PartialEq, Eq, Debug)]
    struct Chatty {
        heard: Vec<(NodeId, u32)>,
        ticks: u32,
        resets: u32,
        draws: Vec<u64>,
    }

    impl Actor for Chatty {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            let due = 10_000 + 1_000 * u64::from(ctx.node_id().0 % 7);
            ctx.set_timer(SimDuration::from_micros(due), TimerId(1));
            ctx.broadcast(ctx.node_id().0);
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, t: TimerId) {
            self.ticks += 1;
            self.draws.push(ctx.rng().next_below(1000));
            match t {
                TimerId(1) => {
                    ctx.broadcast(self.ticks);
                    if self.ticks.is_multiple_of(3) {
                        // Zero-delay chain: fires at the same instant.
                        ctx.set_timer(SimDuration::ZERO, TimerId(2));
                    }
                    ctx.set_timer(SimDuration::from_micros(7_900), TimerId(1));
                }
                _ => {
                    let to = NodeId((ctx.node_id().0 + 1) % 5);
                    ctx.unicast(to, 99);
                }
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.heard.push((from, msg));
        }

        fn on_reset(&mut self) {
            *self = Self::default();
            self.resets = 1;
        }
    }

    fn strip5() -> Topology {
        // Five nodes spread along x so 2 and 4 shards split them.
        let mut b = TopologyBuilder::new(30.0);
        let ids: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(Point2::new(25.0 * i as f64, (i % 2) as f64)))
            .collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], LinkQos::uniform(1)).unwrap();
        }
        b.link(ids[0], ids[2], LinkQos::uniform(2)).unwrap();
        b.build()
    }

    fn fingerprint(
        stats: SimStats,
        actors: Vec<(NodeId, Chatty)>,
        now: SimTime,
    ) -> (SimStats, Vec<(NodeId, Chatty)>, SimTime) {
        (stats, actors, now)
    }

    fn run_single(
        seed: u64,
        events: &[(u64, WorldEvent)],
    ) -> (SimStats, Vec<(NodeId, Chatty)>, SimTime) {
        let mut sim = Simulator::new(strip5(), RadioConfig::default(), seed, |_| {
            Chatty::default()
        });
        for &(at, ev) in events {
            sim.schedule_world(SimTime::from_micros(at), ev);
        }
        sim.run_for(SimDuration::from_secs(2));
        fingerprint(
            sim.stats(),
            sim.actors().map(|(n, a)| (n, a.clone())).collect(),
            sim.now(),
        )
    }

    fn run_sharded(
        seed: u64,
        shards: u32,
        window: Option<SimDuration>,
        events: &[(u64, WorldEvent)],
    ) -> (SimStats, Vec<(NodeId, Chatty)>, SimTime) {
        let mut sim =
            ShardedSimulator::new(strip5(), RadioConfig::default(), seed, shards, |_, _| {
                Chatty::default()
            });
        if let Some(w) = window {
            sim.set_window(w);
        }
        for &(at, ev) in events {
            sim.schedule_world(SimTime::from_micros(at), ev);
        }
        sim.run_for(SimDuration::from_secs(2));
        fingerprint(
            sim.stats(),
            sim.actors().map(|(n, a)| (n, a.clone())).collect(),
            sim.now(),
        )
    }

    /// The sharded engine's delivery handlers must also see the world
    /// as of *receive* time when a QoS drift lands mid-flight — across
    /// a shard boundary, where the frame crosses via the barrier merge
    /// and the world mutation is applied by the coordinator between
    /// windows. A stale read here would make the quality of a link
    /// depend on the shard count.
    #[test]
    fn cross_shard_delivery_sees_world_at_receive_time() {
        #[derive(Default, Clone)]
        struct QosProbe {
            seen: Vec<(NodeId, Option<LinkQos>)>,
        }
        impl Actor for QosProbe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.node_id() == NodeId(2) {
                    ctx.broadcast(());
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, ()>, _t: TimerId) {}
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, from: NodeId, _m: ()) {
                self.seen.push((from, ctx.link_qos(from)));
            }
        }
        for shards in [1u32, 2, 4] {
            let mut sim =
                ShardedSimulator::new(strip5(), RadioConfig::default(), 9, shards, |_, _| {
                    QosProbe::default()
                });
            // Node 2 broadcasts at t = 0; delivery lands at t = 1 ms.
            // The 2—3 QoS drifts at 0.5 ms, while the frame is in
            // flight (at 4 shards, crossing a shard boundary).
            sim.schedule_world(
                SimTime::from_micros(500),
                WorldEvent::QosChange {
                    a: NodeId(2),
                    b: NodeId(3),
                    qos: LinkQos::uniform(7),
                },
            );
            sim.run_for(SimDuration::from_secs(1));
            let (_, probe) = sim
                .actors()
                .find(|&(n, _)| n == NodeId(3))
                .expect("node 3 exists");
            assert_eq!(
                probe.seen,
                vec![(NodeId(2), Some(LinkQos::uniform(7)))],
                "{shards} shards: handler must measure the drifted QoS"
            );
        }
    }

    #[test]
    fn sharded_replays_single_queue_exactly() {
        let reference = run_single(42, &[]);
        for shards in [1, 2, 4] {
            assert_eq!(
                run_sharded(42, shards, None, &[]),
                reference,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn window_width_is_an_implementation_detail() {
        let reference = run_single(7, &[]);
        for micros in [1, 13, 250, 999, 1000] {
            let got = run_sharded(7, 3, Some(SimDuration::from_micros(micros)), &[]);
            assert_eq!(got, reference, "window {micros} µs");
        }
    }

    #[test]
    fn churn_and_rehoming_replay_single_queue() {
        let events = [
            (300_000, WorldEvent::Leave { node: NodeId(4) }),
            (
                350_000,
                WorldEvent::Move {
                    node: NodeId(4),
                    to: Point2::new(1.0, 1.0),
                },
            ),
            (600_000, WorldEvent::Join { node: NodeId(4) }),
            (
                600_000,
                WorldEvent::LinkUp {
                    a: NodeId(4),
                    b: NodeId(0),
                    qos: LinkQos::uniform(1),
                },
            ),
            (
                900_000,
                WorldEvent::QosChange {
                    a: NodeId(0),
                    b: NodeId(1),
                    qos: LinkQos::uniform(9),
                },
            ),
        ];
        let reference = run_single(11, &events);
        for shards in [2, 4] {
            let got = run_sharded(11, shards, None, &events);
            assert_eq!(got, reference, "{shards} shards");
        }
        // The rejoiner moved to x=1.0: it must now be homed with node 0.
        let mut sim = ShardedSimulator::new(strip5(), RadioConfig::default(), 11, 4, |_, _| {
            Chatty::default()
        });
        for &(at, ev) in &events {
            sim.schedule_world(SimTime::from_micros(at), ev);
        }
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.shard_of(NodeId(4)), sim.shard_of(NodeId(0)));
        assert_eq!(
            sim.shard_of(NodeId(4)),
            sim.shard_for_position(Point2::new(1.0, 1.0))
        );
    }

    #[test]
    fn traces_match_the_reference() {
        let run = |shards: Option<u32>| -> (usize, Vec<TraceEvent>) {
            let events = [(400_000, WorldEvent::Leave { node: NodeId(2) })];
            match shards {
                None => {
                    let mut sim =
                        Simulator::new(strip5(), RadioConfig::default(), 5, |_| Chatty::default());
                    sim.enable_trace(4096);
                    for &(at, ev) in &events {
                        sim.schedule_world(SimTime::from_micros(at), ev);
                    }
                    sim.run_for(SimDuration::from_millis(800));
                    let t = sim.trace().unwrap();
                    (t.total_recorded() as usize, t.iter().copied().collect())
                }
                Some(k) => {
                    let mut sim =
                        ShardedSimulator::new(strip5(), RadioConfig::default(), 5, k, |_, _| {
                            Chatty::default()
                        });
                    sim.enable_trace(4096);
                    for &(at, ev) in &events {
                        sim.schedule_world(SimTime::from_micros(at), ev);
                    }
                    sim.run_for(SimDuration::from_millis(800));
                    let t = sim.trace().unwrap();
                    (t.total_recorded() as usize, t.iter().copied().collect())
                }
            }
        };
        let reference = run(None);
        assert!(reference.0 > 0);
        for shards in [1, 2, 4] {
            assert_eq!(run(Some(shards)), reference, "{shards} shards");
        }
    }

    #[test]
    fn lossy_phy_replays_single_queue_exactly() {
        use crate::engine::{LossyPhy, PhyModel};
        let radio = RadioConfig {
            phy: PhyModel::Lossy(LossyPhy {
                edge_drop_ppm: 600_000,
                exponent: 2,
                capture_window: SimDuration::from_micros(150),
            }),
            ..RadioConfig::default()
        };
        // Churn so rehoming must migrate the loss streams and capture
        // state along with the actor.
        let events = [
            (300_000, WorldEvent::Leave { node: NodeId(4) }),
            (
                350_000,
                WorldEvent::Move {
                    node: NodeId(4),
                    to: Point2::new(1.0, 1.0),
                },
            ),
            (600_000, WorldEvent::Join { node: NodeId(4) }),
            (
                600_000,
                WorldEvent::LinkUp {
                    a: NodeId(4),
                    b: NodeId(0),
                    qos: LinkQos::uniform(1),
                },
            ),
        ];
        let reference = {
            let mut sim = Simulator::new(strip5(), radio, 13, |_| Chatty::default());
            for &(at, ev) in &events {
                sim.schedule_world(SimTime::from_micros(at), ev);
            }
            sim.run_for(SimDuration::from_secs(2));
            fingerprint(
                sim.stats(),
                sim.actors().map(|(n, a)| (n, a.clone())).collect(),
                sim.now(),
            )
        };
        assert!(reference.0.phy_drops > 0, "the loss model must bite");
        for shards in [1, 2, 4] {
            let mut sim =
                ShardedSimulator::new(strip5(), radio, 13, shards, |_, _| Chatty::default());
            for &(at, ev) in &events {
                sim.schedule_world(SimTime::from_micros(at), ev);
            }
            sim.run_for(SimDuration::from_secs(2));
            let got = fingerprint(
                sim.stats(),
                sim.actors().map(|(n, a)| (n, a.clone())).collect(),
                sim.now(),
            );
            assert_eq!(got, reference, "{shards} shards");
        }
    }

    #[test]
    fn membership_stays_a_partition() {
        let mut sim = ShardedSimulator::new(strip5(), RadioConfig::default(), 3, 4, |_, _| {
            Chatty::default()
        });
        sim.schedule_world(
            SimTime::from_micros(100_000),
            WorldEvent::Leave { node: NodeId(0) },
        );
        sim.schedule_world(
            SimTime::from_micros(150_000),
            WorldEvent::Move {
                node: NodeId(0),
                to: Point2::new(100.0, 0.0),
            },
        );
        sim.schedule_world(
            SimTime::from_micros(200_000),
            WorldEvent::Join { node: NodeId(0) },
        );
        sim.run_for(SimDuration::from_secs(1));
        let mut seen = vec![0u32; sim.node_count()];
        for shard in 0..sim.shard_count() {
            for (slot, &node) in sim.shard_members(shard).iter().enumerate() {
                seen[node.index()] += 1;
                assert_eq!(sim.shard_of(node), shard);
                assert_eq!(sim.shard_members(shard)[slot], node);
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every node in exactly one shard"
        );
    }
}
