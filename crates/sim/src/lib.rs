//! Deterministic discrete-event simulation engine for the `qolsr-rs`
//! reproduction of *"Towards an efficient QoS based selection of neighbors
//! in QOLSR"* (Khadar, Mitton, Simplot-Ryl — SN/ICDCS 2010).
//!
//! The paper evaluates with "our own C simulator that assumes an ideal MAC
//! layer, i.e. no interferences and no packet collisions". This crate is
//! the Rust equivalent, extended with the dynamic-topology machinery the
//! paper's MANET motivation calls for:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time;
//! * [`SimRng`] — a seedable xoshiro256\*\* generator with stream
//!   splitting, so every run is exactly reproducible independent of
//!   external crate versions;
//! * [`Simulator`] — an actor-per-node event loop over a *mutable world*
//!   (`qolsr_graph::DynamicTopology`): actors receive timers and
//!   messages and emit effects through a [`Context`]; scheduled
//!   `WorldEvent`s (link up/down, QoS drift, motion, node churn)
//!   interleave with actor events in the same deterministic
//!   `(time, sequence)` order. A node that leaves the network loses its
//!   pending timers and in-flight frames; on rejoin its actor is reset
//!   ([`Actor::on_reset`]) and restarted;
//! * [`ShardedSimulator`] / [`ExecMode`] — region-sharded parallel
//!   execution: nodes partition into spatial shards, each with its own
//!   timer wheel, stepping in bounded windows with a deterministic
//!   barrier merge; with zero radio jitter the observable schedule is
//!   byte-identical to [`Simulator`] for any shard count (see
//!   [`shard`]);
//! * [`scenario`] — reusable mobility/churn models (random waypoint,
//!   Poisson churn, Gauss–Markov weight drift) that pre-generate a
//!   seed-deterministic world-event schedule for the engine;
//! * [`RadioConfig`] — the ideal-MAC radio: every transmission reaches all
//!   (or one of) the sender's *current* unit-disk neighbors after a
//!   configurable per-hop latency plus deterministic jitter, with no loss;
//! * [`traffic`] — data-plane primitives: seeded CBR/bursty flow
//!   generators, the bounded per-node transmit queue and per-flow
//!   delivery records (protocol crates own the actual forwarding; the
//!   engine counts data frames via [`Actor::is_data`] into the
//!   [`SimStats`] `data_*` fields);
//! * [`stats`] / [`trace`] — counters, histograms and an event trace ring
//!   buffer for debugging protocol behaviour.
//!
//! # Timer-wheel semantics
//!
//! The event queue behind [`Simulator`] is a slotted timer wheel
//! ([`queue`]): a small *due heap* for the slot window currently being
//! consumed, a ring of 1 ms buckets with `O(1)` hash-by-time inserts
//! covering the next ~8 s (the dominant horizon: periodic HELLO/TC and
//! sweep timers, millisecond radio deliveries), and an overflow heap for
//! anything beyond the ring. Pop order is **exactly** `(time, sequence)`
//! — identical to a plain binary heap — which is why the wheel can be
//! the default without perturbing a single seeded replay.
//! [`SchedulerKind::BinaryHeap`] keeps the reference implementation
//! alive; `tests/scheduler_differential.rs` and the crate's own
//! `queue_properties` suite pin byte-identical behaviour across both.
//!
//! # Determinism contract
//!
//! Every run is a pure function of its inputs: the construction seed
//! feeds one [`SimRng`] that splits into per-node streams (and an engine
//! stream for radio jitter), world events apply at fixed scheduled
//! instants, and simultaneous events dispatch in schedule order. Two
//! simulators built with equal `(topology, radio, seed, scheduler)`
//! therefore replay byte-identically — same stats, same traces, same end
//! state — on any machine. Experiment harnesses extend the contract to
//! *thread-count invariance*: runs are sharded, but per-run results are
//! merged in run order, so aggregates never depend on worker count.
//!
//! # Examples
//!
//! Seeded replays are exact — the engine's statistics (and everything
//! else) are a pure function of the seed:
//!
//! ```
//! use qolsr_graph::{NodeId, Point2, TopologyBuilder};
//! use qolsr_metrics::LinkQos;
//! use qolsr_sim::{Actor, Context, RadioConfig, SimDuration, Simulator, TimerId};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = u8;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
//!         ctx.set_timer(SimDuration::from_millis(10), TimerId(1));
//!     }
//!     fn on_timer(&mut self, ctx: &mut Context<'_, u8>, _t: TimerId) {
//!         ctx.broadcast(1);
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, u8>, _from: NodeId, _m: u8) {}
//! }
//!
//! let topo = || {
//!     let mut b = TopologyBuilder::new(10.0);
//!     let a = b.add_node(Point2::new(0.0, 0.0));
//!     let c = b.add_node(Point2::new(5.0, 0.0));
//!     b.link(a, c, LinkQos::uniform(1)).unwrap();
//!     b.build()
//! };
//! let run = |seed: u64| {
//!     let mut sim = Simulator::new(topo(), RadioConfig::default(), seed, |_| Echo);
//!     sim.run_for(SimDuration::from_secs(1));
//!     sim.stats()
//! };
//! assert_eq!(run(9), run(9), "equal seeds replay byte-identically");
//! ```
//!
//! A two-node ping/pong:
//!
//! ```
//! use qolsr_graph::{NodeId, Point2, TopologyBuilder};
//! use qolsr_metrics::LinkQos;
//! use qolsr_sim::{Actor, Context, RadioConfig, SimDuration, Simulator, TimerId};
//!
//! struct Ping { got: u32 }
//! impl Actor for Ping {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if ctx.node_id() == NodeId(0) {
//!             ctx.broadcast(1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, _t: TimerId) {}
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: NodeId, m: u32) {
//!         self.got = m;
//!         if m < 3 {
//!             ctx.broadcast(m + 1);
//!         }
//!     }
//! }
//!
//! let mut b = TopologyBuilder::new(10.0);
//! let a = b.add_node(Point2::new(0.0, 0.0));
//! let c = b.add_node(Point2::new(5.0, 0.0));
//! b.link(a, c, LinkQos::uniform(1)).unwrap();
//!
//! let mut sim = Simulator::new(b.build(), RadioConfig::default(), 42, |_| Ping { got: 0 });
//! sim.run_until(qolsr_sim::SimTime::ZERO + SimDuration::from_secs(1));
//! assert_eq!(sim.actor(a).got, 2); // node 0 got the pong "2"
//! assert_eq!(sim.actor(c).got, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod queue;
mod rng;
pub mod scenario;
pub mod shard;
pub mod stats;
mod time;
pub mod trace;
pub mod traffic;

pub use engine::{
    Actor, Context, CorruptionParams, FrameCorruption, FrameDamage, LossyPhy, PhyModel,
    RadioConfig, SimStats, Simulator, TimerId,
};
pub use queue::SchedulerKind;
pub use rng::SimRng;
pub use scenario::{apply_recorded, MobilityModel, NeighborScan, Scenario, ScenarioBuilder};
pub use shard::{ExecMode, ShardedSimulator};
pub use time::{SimDuration, SimTime};
pub use traffic::{
    DataPacket, DropCause, FlowModel, FlowRecord, FlowSpec, FlowState, TrafficStats, TxQueue,
    TxQueueConfig, TRAFFIC_STREAM_SALT,
};
