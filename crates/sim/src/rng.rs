//! Deterministic random number generation.
//!
//! Experiments must be exactly reproducible from a seed, independent of
//! external crate versions, so the engine carries its own xoshiro256\*\*
//! implementation (public-domain algorithm by Blackman & Vigna) seeded via
//! SplitMix64. `SimRng` implements [`rand::RngCore`], so all of `rand`'s
//! distributions and sampling helpers work on top of it.

use std::convert::Infallible;

use rand::rand_core::TryRng;

/// A seedable xoshiro256\*\* generator with stream splitting.
///
/// # Examples
///
/// ```
/// use qolsr_sim::SimRng;
/// use rand::RngExt;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let x: f64 = a.random_range(0.0..1.0); // rand integration
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro's state must not be all-zero; SplitMix64 guarantees this
        // for any seed, but keep a defensive fallback.
        if s == [0; 4] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Advances the generator and returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; the parent advances.
    ///
    /// Used to hand every simulated node its own stream so that per-node
    /// randomness (e.g. HELLO jitter) does not depend on event
    /// interleaving.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening multiply keeps the value in range; retry in the biased
        // zone.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// Implementing `TryRng` with an infallible error makes `SimRng` a
// `rand::Rng` through rand_core's blanket impl, unlocking every `rand`
// distribution and `RngExt` helper.
impl TryRng for SimRng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((SimRng::next_u64(self) >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(SimRng::next_u64(self))
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        for chunk in dst.chunks_mut(8) {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn reproducible_streams() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut child = parent.split();
        let child_first = child.next_u64();
        // Re-derive: same parent seed yields same child stream.
        let mut parent2 = SimRng::seed_from_u64(9);
        let mut child2 = parent2.split();
        assert_eq!(child2.next_u64(), child_first);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        let _ = rng.next_below(0);
    }

    #[test]
    fn rngcore_fill_bytes() {
        use rand::Rng as _;
        let mut rng = SimRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn integrates_with_rand_distributions() {
        let mut rng = SimRng::seed_from_u64(10);
        let v: u64 = rng.random_range(3..=9);
        assert!((3..=9).contains(&v));
    }
}
